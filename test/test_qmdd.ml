open Mathkit

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_identity_structure () =
  let m = Qmdd.create ~n:4 in
  let id = Qmdd.identity m in
  (* Quasi-reduced identity: one node per variable plus the terminal. *)
  check_int "identity node count" 5 (Qmdd.node_count id);
  check_bool "identity is identity" true (Qmdd.is_identity m id);
  check_bool "matrix form" true (Matrix.is_identity (Qmdd.to_matrix m id))

let test_fig1_cnot_qmdd () =
  (* Paper Fig. 1: the CNOT with control x0, target x1.  U00 = I,
     U11 = X, off-diagonal quadrants 0. *)
  let m = Qmdd.create ~n:2 in
  let e = Qmdd.gate m (Gate.Cnot { control = 0; target = 1 }) in
  check_bool "matches dense CNOT" true
    (Matrix.approx_equal (Qmdd.to_matrix m e)
       (Gate.embedded_matrix ~n:2 (Gate.Cnot { control = 0; target = 1 })));
  (* x0 node, two distinct x1 nodes (I and X patterns), terminal. *)
  check_int "node count" 4 (Qmdd.node_count e);
  let dot = Qmdd.to_dot m e in
  let contains_sub s sub =
    let n = String.length s and k = String.length sub in
    let rec scan i = i + k <= n && (String.sub s i k = sub || scan (i + 1)) in
    scan 0
  in
  check_bool "dot mentions x0" true (contains_sub dot "x0");
  check_bool "ascii mentions terminal" true
    (contains_sub (Qmdd.to_ascii m e) "terminal")

let test_gate_qmdds_match_dense () =
  let gates =
    [
      Gate.H 1;
      Gate.T 2;
      Gate.Sdg 0;
      Gate.Cnot { control = 2; target = 0 };
      Gate.Cz (0, 2);
      Gate.Swap (1, 2);
      Gate.Toffoli { c1 = 1; c2 = 2; target = 0 };
      Gate.Mct { controls = [ 0; 2 ]; target = 1 };
    ]
  in
  List.iter
    (fun g ->
      let m = Qmdd.create ~n:3 in
      let e = Qmdd.gate m g in
      check_bool
        (Printf.sprintf "%s QMDD = dense" (Gate.to_string g))
        true
        (Matrix.approx_equal ~eps:1e-8 (Qmdd.to_matrix m e)
           (Gate.embedded_matrix ~n:3 g)))
    gates

let test_multiply_matches_dense () =
  let m = Qmdd.create ~n:2 in
  let h = Qmdd.gate m (Gate.H 0) in
  let cnot = Qmdd.gate m (Gate.Cnot { control = 0; target = 1 }) in
  let product = Qmdd.multiply m cnot h in
  let dense =
    Matrix.mul
      (Gate.embedded_matrix ~n:2 (Gate.Cnot { control = 0; target = 1 }))
      (Gate.embedded_matrix ~n:2 (Gate.H 0))
  in
  check_bool "CNOT*H matches" true
    (Matrix.approx_equal ~eps:1e-8 (Qmdd.to_matrix m product) dense)

let test_canonicity () =
  (* Z built two ways lands on the same node: S.S = Z. *)
  let m = Qmdd.create ~n:1 in
  let z = Qmdd.gate m (Gate.Z 0) in
  let s = Qmdd.gate m (Gate.S 0) in
  let ss = Qmdd.multiply m s s in
  check_bool "S*S = Z canonically" true (Qmdd.equal z ss);
  (* H.H = I *)
  let h = Qmdd.gate m (Gate.H 0) in
  check_bool "H*H = I" true (Qmdd.is_identity m (Qmdd.multiply m h h))

let test_add () =
  let m = Qmdd.create ~n:1 in
  let x = Qmdd.gate m (Gate.X 0) in
  let z = Qmdd.gate m (Gate.Z 0) in
  let sum = Qmdd.add m x z in
  let dense =
    Matrix.add (Gate.embedded_matrix ~n:1 (Gate.X 0))
      (Gate.embedded_matrix ~n:1 (Gate.Z 0))
  in
  check_bool "X+Z matches dense" true
    (Matrix.approx_equal ~eps:1e-8 (Qmdd.to_matrix m sum) dense);
  let neg_x = Qmdd.multiply m (Qmdd.gate m (Gate.Z 0)) (Qmdd.multiply m x (Qmdd.gate m (Gate.Z 0))) in
  (* X + ZXZ = 0 *)
  let zero_sum = Qmdd.add m x neg_x in
  check_bool "X + ZXZ = 0" true (Qmdd.equal zero_sum (Qmdd.zero m))

let test_of_circuit_and_entry () =
  let c =
    Circuit.make ~n:2 [ Gate.H 0; Gate.Cnot { control = 0; target = 1 } ]
  in
  let m = Qmdd.create ~n:2 in
  let e = Qmdd.of_circuit m c in
  let expected = Cx.of_float Cx.inv_sqrt2 in
  check_bool "entry (0,0)" true
    (Cx.approx_equal (Qmdd.entry m e ~row:0 ~col:0) expected);
  check_bool "entry (3,0)" true
    (Cx.approx_equal (Qmdd.entry m e ~row:3 ~col:0) expected);
  check_bool "entry (1,0)" true (Cx.is_zero (Qmdd.entry m e ~row:1 ~col:0));
  check_bool "matches dense unitary" true
    (Matrix.approx_equal ~eps:1e-8 (Qmdd.to_matrix m e) (Sim.unitary c))

let test_equivalence_phase () =
  let z = Circuit.make ~n:1 [ Gate.Z 0 ] in
  let xzx = Circuit.make ~n:1 [ Gate.X 0; Gate.Z 0; Gate.X 0 ] in
  check_bool "Z ~ XZX up to phase" true (Qmdd.equivalent z xzx);
  check_bool "Z <> XZX exactly" false (Qmdd.equivalent ~up_to_phase:false z xzx);
  let ss = Circuit.make ~n:1 [ Gate.S 0; Gate.S 0 ] in
  check_bool "Z = SS exactly" true (Qmdd.equivalent ~up_to_phase:false z ss)

let test_inequivalence () =
  let a = Circuit.make ~n:2 [ Gate.Cnot { control = 0; target = 1 } ] in
  let b = Circuit.make ~n:2 [ Gate.Cnot { control = 1; target = 0 } ] in
  check_bool "distinct CNOTs differ" false (Qmdd.equivalent a b);
  let almost =
    Circuit.make ~n:2
      [ Gate.H 0; Gate.Cnot { control = 0; target = 1 }; Gate.T 1 ]
  in
  let original =
    Circuit.make ~n:2 [ Gate.H 0; Gate.Cnot { control = 0; target = 1 } ]
  in
  check_bool "extra T detected" false (Qmdd.equivalent almost original)

let test_node_budget () =
  let c = Testutil.gen_circuit ~max_gates:20 4 |> fun g ->
    QCheck2.Gen.generate1 g
  in
  Alcotest.check_raises "budget exceeded" Qmdd.Node_budget_exceeded (fun () ->
      ignore (Qmdd.equivalent ~node_budget:2 c c))

let test_deadline () =
  let c =
    Circuit.make ~n:3
      [
        Gate.H 0;
        Gate.T 1;
        Gate.Cnot { control = 0; target = 1 };
        Gate.Cnot { control = 1; target = 2 };
      ]
  in
  (* An already-expired deadline aborts before any real work. *)
  let past = Int64.sub (Trace.now_ns ()) 1L in
  Alcotest.check_raises "expired deadline" Qmdd.Deadline_exceeded (fun () ->
      ignore (Qmdd.equivalent ~deadline_ns:past c c));
  (* A generous one never fires. *)
  let future = Int64.add (Trace.now_ns ()) 60_000_000_000L in
  check_bool "generous deadline passes" true
    (Qmdd.equivalent ~deadline_ns:future c c)

let test_swap_chain_identity () =
  (* SWAP expressed as 3 CNOTs is the SWAP gate: paper Fig. 3. *)
  let swap = Circuit.make ~n:2 [ Gate.Swap (0, 1) ] in
  let cnots =
    Circuit.make ~n:2
      [
        Gate.Cnot { control = 0; target = 1 };
        Gate.Cnot { control = 1; target = 0 };
        Gate.Cnot { control = 0; target = 1 };
      ]
  in
  check_bool "Fig 3 identity" true (Qmdd.equivalent ~up_to_phase:false swap cnots)

let test_adjoint_and_trace () =
  let m = Qmdd.create ~n:2 in
  let c =
    Circuit.make ~n:2 [ Gate.H 0; Gate.T 1; Gate.Cnot { control = 0; target = 1 } ]
  in
  let e = Qmdd.of_circuit m c in
  let adj = Qmdd.adjoint m e in
  check_bool "adjoint matches dense" true
    (Matrix.approx_equal ~eps:1e-8 (Qmdd.to_matrix m adj)
       (Matrix.dagger (Sim.unitary c)));
  check_bool "U-dagger U = I" true
    (Qmdd.is_identity m (Qmdd.multiply m adj e));
  (* Trace of the identity is the dimension; trace of X is 0. *)
  check_bool "trace identity" true
    (Cx.approx_equal (Qmdd.trace m (Qmdd.identity m)) (Cx.of_float 4.0));
  check_bool "trace X" true
    (Cx.is_zero (Qmdd.trace m (Qmdd.gate m (Gate.X 0))))

let test_process_fidelity () =
  let bell =
    Circuit.make ~n:2 [ Gate.H 0; Gate.Cnot { control = 0; target = 1 } ]
  in
  check_bool "self fidelity 1" true
    (abs_float (Qmdd.process_fidelity bell bell -. 1.0) < 1e-9);
  (* Global phase does not reduce fidelity. *)
  let phased =
    Circuit.make ~n:2
      ([ Gate.X 0; Gate.Z 0; Gate.X 0; Gate.Z 0 ] @ Circuit.gates bell)
  in
  check_bool "phase invariant" true
    (abs_float (Qmdd.process_fidelity bell phased -. 1.0) < 1e-9);
  (* A genuinely different circuit scores below 1. *)
  let other = Circuit.make ~n:2 [ Gate.H 0 ] in
  check_bool "different circuits score lower" true
    (Qmdd.process_fidelity bell other < 0.99)

let prop_trace_matches_dense =
  QCheck2.Test.make ~name:"QMDD trace = dense trace" ~count:30
    (Testutil.gen_circuit ~max_gates:10 3)
    (fun c ->
      let m = Qmdd.create ~n:3 in
      let e = Qmdd.of_circuit m c in
      let dense = Sim.unitary c in
      let dense_trace =
        List.fold_left
          (fun acc k -> Cx.add acc (Matrix.get dense k k))
          Cx.zero
          (List.init 8 (fun i -> i))
      in
      Cx.approx_equal ~eps:1e-7 (Qmdd.trace m e) dense_trace)

let bits_of_int ~n k = Array.init n (fun q -> (k lsr (n - 1 - q)) land 1 = 1)

let test_basis_simulation () =
  let m = Qmdd.create ~n:2 in
  let bell =
    Circuit.make ~n:2 [ Gate.H 0; Gate.Cnot { control = 0; target = 1 } ]
  in
  let from = bits_of_int ~n:2 0 in
  let state = Qmdd.run_basis m bell ~from in
  let expected = Cx.of_float Cx.inv_sqrt2 in
  let amp k = Qmdd.amplitude m state ~from (bits_of_int ~n:2 k) in
  check_bool "amp |00>" true (Cx.approx_equal (amp 0) expected);
  check_bool "amp |11>" true (Cx.approx_equal (amp 3) expected);
  check_bool "amp |01>" true (Cx.is_zero (amp 1));
  check_bool "superposition detected" true
    (Qmdd.classical_outcome m state ~from = None)

let test_classical_outcome () =
  let m = Qmdd.create ~n:3 in
  let c =
    Circuit.make ~n:3
      [ Gate.X 0; Gate.Toffoli { c1 = 0; c2 = 1; target = 2 } ]
  in
  (* From |010>: X flips q0 -> |110>, Toffoli fires -> |111>. *)
  let from = bits_of_int ~n:3 0b010 in
  let state = Qmdd.run_basis m c ~from in
  check_bool "maps |010> to |111>" true
    (Qmdd.classical_outcome m state ~from = Some (bits_of_int ~n:3 0b111));
  (* From |000>: X -> |100>, Toffoli idle. *)
  let from0 = bits_of_int ~n:3 0 in
  let state0 = Qmdd.run_basis m c ~from:from0 in
  check_bool "maps |000> to |100>" true
    (Qmdd.classical_outcome m state0 ~from:from0 = Some (bits_of_int ~n:3 0b100))

let test_wide_functional_run () =
  (* Functional end-to-end check at full device width: compile a T6
     gate to the 96-qubit machine and run the mapped circuit on the
     all-controls-set basis state; the target (q25) must flip even
     though the dense simulator could never touch 2^96 amplitudes. *)
  let cascade = Circuit.make ~n:96 [ Gate.mct [ 1; 2; 3; 4; 5 ] 25 ] in
  let opts =
    {
      (Compiler.default_options ~device:Device.Ibm.big96) with
      Compiler.verification = Compiler.Skip;
    }
  in
  let r = Compiler.compile opts (Compiler.Quantum cascade) in
  let set_bits qs =
    Array.init 96 (fun q -> List.mem q qs)
  in
  let from = set_bits [ 1; 2; 3; 4; 5 ] in
  let m = Qmdd.create ~n:96 in
  let state = Qmdd.run_basis m r.Compiler.optimized ~from in
  check_bool "controls set: target flips" true
    (Qmdd.classical_outcome m state ~from = Some (set_bits [ 1; 2; 3; 4; 5; 25 ]));
  (* One control missing: nothing happens. *)
  let from' = set_bits [ 1; 2; 3; 4 ] in
  let state' = Qmdd.run_basis m r.Compiler.optimized ~from:from' in
  check_bool "control missing: identity" true
    (Qmdd.classical_outcome m state' ~from:from' = Some from')

let prop_basis_run_matches_dense =
  QCheck2.Test.make ~name:"run_basis matches dense simulation" ~count:25
    (Testutil.gen_circuit ~max_gates:10 3)
    (fun c ->
      let m = Qmdd.create ~n:3 in
      let from = bits_of_int ~n:3 5 in
      let state = Qmdd.run_basis m c ~from in
      let dense = Sim.run c (Sim.basis_state ~n:3 5) in
      List.for_all
        (fun k ->
          Cx.approx_equal ~eps:1e-7
            (Qmdd.amplitude m state ~from (bits_of_int ~n:3 k))
            dense.(k))
        (List.init 8 (fun i -> i)))

let test_reorder_flag () =
  (* Equivalence answers agree with and without first-use relabeling. *)
  let a =
    Circuit.make ~n:6
      [
        Gate.Cnot { control = 5; target = 0 };
        Gate.H 5;
        Gate.Toffoli { c1 = 5; c2 = 0; target = 3 };
      ]
  in
  let b = Circuit.concat a (Circuit.empty 6) in
  check_bool "reordered" true (Qmdd.equivalent ~reorder:true a b);
  check_bool "plain" true (Qmdd.equivalent ~reorder:false a b);
  let different = Circuit.append a (Gate.T 2) in
  check_bool "reordered inequivalence" false (Qmdd.equivalent ~reorder:true a different);
  check_bool "plain inequivalence" false (Qmdd.equivalent ~reorder:false a different)

let prop_reorder_agrees =
  QCheck2.Test.make ~name:"reorder does not change the verdict" ~count:30
    QCheck2.Gen.(
      pair (Testutil.gen_circuit ~max_gates:10 4) (Testutil.gen_circuit ~max_gates:10 4))
    (fun (a, b) ->
      Qmdd.equivalent ~reorder:true a b = Qmdd.equivalent ~reorder:false a b)

let prop_qmdd_matches_dense =
  QCheck2.Test.make ~name:"random circuit: QMDD = dense unitary" ~count:40
    (Testutil.gen_circuit ~max_gates:15 3)
    (fun c ->
      let m = Qmdd.create ~n:3 in
      let e = Qmdd.of_circuit m c in
      Matrix.approx_equal ~eps:1e-7 (Qmdd.to_matrix m e) (Sim.unitary c))

let prop_equivalent_reflexive_shuffled =
  (* A circuit is equivalent to itself with commuting prefix moved: here
     simply itself (canonical reflexivity through the alternating
     scheme). *)
  QCheck2.Test.make ~name:"equivalent c c" ~count:40
    (Testutil.gen_circuit ~max_gates:15 4)
    (fun c -> Qmdd.equivalent ~up_to_phase:false c c)

let prop_inverse_equivalence =
  QCheck2.Test.make ~name:"c . inverse c ~ empty" ~count:40
    (Testutil.gen_circuit ~max_gates:12 3)
    (fun c ->
      Qmdd.equivalent ~up_to_phase:false
        (Circuit.concat c (Circuit.inverse c))
        (Circuit.empty 3))

let prop_gate_qmdd_node_linear =
  (* Gate diagrams stay linear in n even on wide registers. *)
  QCheck2.Test.make ~name:"gate QMDD linear size" ~count:30
    (Testutil.gen_gate 16)
    (fun g ->
      let m = Qmdd.create ~n:16 in
      (* Controlled gates need at most ~3 nodes per level, SWAPs (three
         multiplied CNOTs) up to ~6. *)
      Qmdd.node_count (Qmdd.gate m g) <= 6 * 16 + 10)

let test_canonical_weight_stability () =
  (* Two interleaved weight streams whose values land a near-boundary
     hair apart must canonicalize stably: the value table keeps every
     established representative (per-bucket chains — a miss appends, it
     never evicts), so replaying either stream maps onto the original
     representative and the unique-node count stays flat instead of
     growing with every stream switch. *)
  let m = Qmdd.create ~n:1 in
  let theta = 0.7 in
  let ga = Gate.Phase (theta, 0) in
  (* Within one bucket of [ga]'s weight: must share its node. *)
  let gb = Gate.Phase (theta +. 4e-10, 0) in
  (* Far enough (> 2e-9 in weight space) to deserve its own
     representative, close enough to keep exercising the same
     neighborhood scan. *)
  let gc = Gate.Phase (theta +. 2e-8, 0) in
  let ea = Qmdd.gate m ga in
  let eb = Qmdd.gate m gb in
  Alcotest.(check bool)
    "near-equal weights canonicalize to one node" true (Qmdd.equal ea eb);
  ignore (Qmdd.gate m gc);
  let baseline = (Qmdd.stats m).Qmdd.unique_nodes in
  for _ = 1 to 50 do
    ignore (Qmdd.gate m ga);
    ignore (Qmdd.gate m gc);
    ignore (Qmdd.gate m gb)
  done;
  let after = (Qmdd.stats m).Qmdd.unique_nodes in
  Alcotest.(check int) "unique-node count stays flat" baseline after;
  (* And replaying stream A still yields the original edge, physically. *)
  Alcotest.(check bool) "representative stable" true
    (Qmdd.equal ea (Qmdd.gate m ga))

let () =
  Alcotest.run "qmdd"
    [
      ( "construction",
        [
          Alcotest.test_case "identity" `Quick test_identity_structure;
          Alcotest.test_case "fig1 cnot" `Quick test_fig1_cnot_qmdd;
          Alcotest.test_case "gates vs dense" `Quick test_gate_qmdds_match_dense;
          Alcotest.test_case "multiply" `Quick test_multiply_matches_dense;
          Alcotest.test_case "add" `Quick test_add;
          Alcotest.test_case "canonicity" `Quick test_canonicity;
          Alcotest.test_case "canonical weight stability" `Quick
            test_canonical_weight_stability;
          Alcotest.test_case "of_circuit/entry" `Quick test_of_circuit_and_entry;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "phase handling" `Quick test_equivalence_phase;
          Alcotest.test_case "inequivalence" `Quick test_inequivalence;
          Alcotest.test_case "node budget" `Quick test_node_budget;
          Alcotest.test_case "deadline" `Quick test_deadline;
          Alcotest.test_case "fig3 swap identity" `Quick test_swap_chain_identity;
          Alcotest.test_case "reorder flag" `Quick test_reorder_flag;
          QCheck_alcotest.to_alcotest prop_reorder_agrees;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "adjoint/trace" `Quick test_adjoint_and_trace;
          Alcotest.test_case "process fidelity" `Quick test_process_fidelity;
          QCheck_alcotest.to_alcotest prop_trace_matches_dense;
        ] );
      ( "basis simulation",
        [
          Alcotest.test_case "amplitudes" `Quick test_basis_simulation;
          Alcotest.test_case "classical outcome" `Quick test_classical_outcome;
          Alcotest.test_case "96-qubit functional check" `Quick
            test_wide_functional_run;
          QCheck_alcotest.to_alcotest prop_basis_run_matches_dense;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_qmdd_matches_dense;
          QCheck_alcotest.to_alcotest prop_equivalent_reflexive_shuffled;
          QCheck_alcotest.to_alcotest prop_inverse_equivalence;
          QCheck_alcotest.to_alcotest prop_gate_qmdd_node_linear;
        ] );
    ]
