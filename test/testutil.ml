(* Shared generators and assertions for the property-based tests. *)

(* --- bridges from the seeded lib/fuzz generators ---

   The fuzz subsystem and the QCheck2 suites draw from one generator
   source, so a distribution fix (a new edge angle, a new device
   topology) reaches both at once.  [Fuzz.Gen.t] is a plain
   [Random.State.t -> 'a], which QCheck2 lifts directly; shrinking is
   left to the fuzz engine's own shrinker. *)

let of_fuzz_gen g = QCheck2.Gen.make_primitive ~gen:g ~shrink:(fun _ -> Seq.empty)

(* A random circuit over the full gate set, from the fuzz generators
   (widths 1..max_qubits, rotation edge angles included). *)
let random_circuit ?(max_qubits = 8) ?(max_gates = 16) () =
  of_fuzz_gen (Fuzz.Gen.circuit ?gate:None ~max_qubits ~max_gates)

(* A random connected device from the fuzz generators (chains, rings,
   stars, spanning-tree-plus-edges).  [min_qubits] lets suites that pin
   their circuit width demand a device at least that wide. *)
let gen_device ?(min_qubits = 2) ?(max_qubits = 6) () =
  let rec draw st =
    let d = Fuzz.Gen.device ~max_qubits st in
    if Device.n_qubits d >= min_qubits then d else draw st
  in
  of_fuzz_gen draw

(* Dense-oracle unitary equality with an explicit tolerance.  Widens
   the narrower circuit so registers of different sizes compare as the
   same operator on the larger one; callers keep widths within
   [Sim.max_unitary_qubits]. *)
let assert_unitary_equal ?(tol = 1e-9) ?(up_to_phase = false) msg a b =
  let n = max (Circuit.n_qubits a) (Circuit.n_qubits b) in
  let ua = Sim.unitary (Circuit.widen a n)
  and ub = Sim.unitary (Circuit.widen b n) in
  let eq =
    if up_to_phase then Mathkit.Matrix.equal_up_to_global_phase ~eps:tol ua ub
    else Mathkit.Matrix.approx_equal ~eps:tol ua ub
  in
  if not eq then
    Alcotest.failf "%s: unitaries differ beyond tolerance %g\n-- a --\n%s-- b --\n%s"
      msg tol (Circuit.to_string a) (Circuit.to_string b)

let gen_qubit n = QCheck2.Gen.int_bound (n - 1)

(* Two distinct qubits in [0, n). *)
let gen_pair n =
  QCheck2.Gen.(
    pair (gen_qubit n) (int_bound (n - 2)) |> map (fun (a, d) ->
        let b = (a + 1 + d) mod n in
        (a, b)))

let gen_triple n =
  QCheck2.Gen.(
    triple (gen_qubit n) (int_bound (n - 2)) (int_bound (n - 3))
    |> map (fun (a, d1, d2) ->
           let b = (a + 1 + d1) mod n in
           let c_candidates =
             List.filter (fun q -> q <> a && q <> b)
               (List.init n (fun i -> i))
           in
           let c = List.nth c_candidates (d2 mod List.length c_candidates) in
           (a, b, c)))

(* Angles for random rotation gates: a mix of special values (where
   fusion rules fire) and generic ones. *)
let gen_angle =
  let pi = 4.0 *. atan 1.0 in
  QCheck2.Gen.oneofl
    [ pi; -.pi; pi /. 2.0; pi /. 4.0; -.pi /. 4.0; 1.0; -0.7; 2.5; 0.3 ]

(* A random gate from the full gate set on an n-qubit register (n >= 3). *)
let gen_gate n =
  let open QCheck2.Gen in
  let single ctor = map ctor (gen_qubit n) in
  let rotation ctor = map2 (fun theta q -> ctor theta q) gen_angle (gen_qubit n) in
  oneof
    [
      single (fun q -> Gate.X q);
      single (fun q -> Gate.Y q);
      single (fun q -> Gate.Z q);
      single (fun q -> Gate.H q);
      single (fun q -> Gate.S q);
      single (fun q -> Gate.Sdg q);
      single (fun q -> Gate.T q);
      single (fun q -> Gate.Tdg q);
      rotation (fun theta q -> Gate.Rx (theta, q));
      rotation (fun theta q -> Gate.Ry (theta, q));
      rotation (fun theta q -> Gate.Rz (theta, q));
      rotation (fun theta q -> Gate.Phase (theta, q));
      map (fun (a, b) -> Gate.Cnot { control = a; target = b }) (gen_pair n);
      map (fun (a, b) -> Gate.Cz (a, b)) (gen_pair n);
      map (fun (a, b) -> Gate.Swap (a, b)) (gen_pair n);
      map
        (fun (a, b, c) -> Gate.Toffoli { c1 = a; c2 = b; target = c })
        (gen_triple n);
    ]

(* A random gate from the transmon-native set only. *)
let gen_native_gate n =
  let open QCheck2.Gen in
  let single ctor = map ctor (gen_qubit n) in
  oneof
    [
      single (fun q -> Gate.X q);
      single (fun q -> Gate.Y q);
      single (fun q -> Gate.Z q);
      single (fun q -> Gate.H q);
      single (fun q -> Gate.S q);
      single (fun q -> Gate.Sdg q);
      single (fun q -> Gate.T q);
      single (fun q -> Gate.Tdg q);
      map (fun (a, b) -> Gate.Cnot { control = a; target = b }) (gen_pair n);
    ]

let gen_circuit ?(max_gates = 20) n =
  QCheck2.Gen.(
    int_bound max_gates >>= fun len ->
    list_repeat len (gen_gate n) |> map (fun gates -> Circuit.make ~n gates))

let gen_native_circuit ?(max_gates = 20) n =
  QCheck2.Gen.(
    int_bound max_gates >>= fun len ->
    list_repeat len (gen_native_gate n)
    |> map (fun gates -> Circuit.make ~n gates))

(* A random classical reversible circuit (X / CNOT / Toffoli / SWAP). *)
let gen_classical_circuit ?(max_gates = 20) n =
  let open QCheck2.Gen in
  let gen_gate =
    oneof
      [
        map (fun q -> Gate.X q) (gen_qubit n);
        map (fun (a, b) -> Gate.Cnot { control = a; target = b }) (gen_pair n);
        map (fun (a, b) -> Gate.Swap (a, b)) (gen_pair n);
        map
          (fun (a, b, c) -> Gate.Toffoli { c1 = a; c2 = b; target = c })
          (gen_triple n);
      ]
  in
  int_bound max_gates >>= fun len ->
  list_repeat len gen_gate |> map (fun gates -> Circuit.make ~n gates)

let print_circuit c = Circuit.to_string c

(* Structural equality modulo control ordering of NOT-family gates. *)
let canonical_gate = function
  | Gate.Toffoli { c1; c2; target } -> Gate.mct [ c1; c2 ] target
  | Gate.Mct { controls; target } -> Gate.mct controls target
  | g -> g

let equal_canonical a b =
  Circuit.n_qubits a = Circuit.n_qubits b
  && List.equal Gate.equal
       (List.map canonical_gate (Circuit.gates a))
       (List.map canonical_gate (Circuit.gates b))
