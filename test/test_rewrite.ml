(* Tests for the rewrite-template peephole engine: every template gets a
   fire case (exact before/after pin plus unitary check) and a near-miss
   the side condition must block; the three engine passes get pinned
   merge counts; the rotation-fold metamorphic tests sweep every pair of
   the fuzzer's edge angles; and T-count deltas on the classic
   benchmarks are pinned so a regression in phase merging is loud. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let pi = 4.0 *. atan 1.0

let circ ?(n = 4) gates = Circuit.make ~n gates

let sel name =
  match Rewrite.parse_selection name with
  | Ok s -> s
  | Error e -> Alcotest.failf "parse_selection %S: %s" name e

(* Apply exactly one template (no engine passes) and return the gates. *)
let fire_one ?device name gates =
  let c = circ gates in
  let out, applied = Rewrite.apply_templates ?device ~selection:(sel name) c in
  (Circuit.gates out, applied)

(* --- registry --- *)

let template_names = List.map (fun r -> r.Rewrite.name) Rewrite.rules

let test_registry_complete () =
  check_int "thirteen templates" 13 (List.length Rewrite.rules);
  check_bool "names unique" true
    (List.length (List.sort_uniq compare template_names)
    = List.length template_names);
  List.iter
    (fun r ->
      check_bool (r.Rewrite.name ^ " findable") true
        (Rewrite.find_rule r.Rewrite.name <> None);
      check_bool (r.Rewrite.name ^ " documented") true
        (r.Rewrite.doc <> "" && r.Rewrite.pattern_doc <> ""
        && r.Rewrite.guard_doc <> ""
        && r.Rewrite.replacement_doc <> ""))
    Rewrite.rules;
  check_bool "engine passes named" true
    (Rewrite.engine_pass_names
    = [ "rotation-merge"; "phase-merge"; "clifford-normalize" ]);
  check_bool "all_names = templates @ passes" true
    (Rewrite.all_names = template_names @ Rewrite.engine_pass_names);
  check_bool "unknown rule absent" true (Rewrite.find_rule "bogus" = None)

let test_selection_parsing () =
  check_bool "empty string is default" true
    (Rewrite.selection_to_string (sel "")
    = Rewrite.selection_to_string Rewrite.default_selection);
  check_bool "none is empty" true (Rewrite.selection_is_empty (sel "none"));
  check_bool "default not empty" true
    (not (Rewrite.selection_is_empty Rewrite.default_selection));
  List.iter
    (fun n -> check_bool (n ^ " on under all") true (Rewrite.enabled (sel "all") n))
    Rewrite.all_names;
  let minus = sel "-phase-merge" in
  check_bool "removal starts from default" true
    (Rewrite.enabled minus "rotation-merge"
    && not (Rewrite.enabled minus "phase-merge"));
  let only = sel "rotation-merge" in
  check_bool "bare name starts empty" true
    (Rewrite.enabled only "rotation-merge"
    && not (Rewrite.enabled only "h-x-h-to-z"));
  let reset = sel "none,h-x-h-to-z" in
  check_bool "none resets" true
    (Rewrite.enabled reset "h-x-h-to-z"
    && not (Rewrite.enabled reset "h-z-h-to-x"));
  check_bool "unknown name rejected" true
    (match Rewrite.parse_selection "bogus" with Error _ -> true | Ok _ -> false);
  check_bool "unknown removal rejected" true
    (match Rewrite.parse_selection "-bogus" with Error _ -> true | Ok _ -> false);
  (* Canonical rendering round-trips. *)
  List.iter
    (fun s ->
      let rendered = Rewrite.selection_to_string (sel s) in
      check_bool (s ^ " round-trips") true
        (Rewrite.selection_to_string (sel rendered) = rendered))
    [ ""; "none"; "all"; "-phase-merge"; "rotation-merge,h-x-h-to-z" ];
  check_bool "empty renders none" true
    (Rewrite.selection_to_string Rewrite.empty_selection = "none")

(* --- per-template fire + near-miss --- *)

(* (rule, input, expected output).  Each expected replacement is also
   verified against the dense oracle, so a wrong pin cannot hide. *)
let fire_cases =
  [
    ( "cnot-reversal",
      [ Gate.H 0; Gate.H 1; Gate.Cnot { control = 0; target = 1 };
        Gate.H 0; Gate.H 1 ],
      [ Gate.Cnot { control = 1; target = 0 } ] );
    ( "cnot-reversal",
      (* H order swapped relative to the CNOT operands. *)
      [ Gate.H 1; Gate.H 0; Gate.Cnot { control = 0; target = 1 };
        Gate.H 1; Gate.H 0 ],
      [ Gate.Cnot { control = 1; target = 0 } ] );
    ("h-x-h-to-z", [ Gate.H 0; Gate.X 0; Gate.H 0 ], [ Gate.Z 0 ]);
    ("h-z-h-to-x", [ Gate.H 2; Gate.Z 2; Gate.H 2 ], [ Gate.X 2 ]);
    ( "h-cz-h-to-cnot",
      [ Gate.H 1; Gate.Cz (0, 1); Gate.H 1 ],
      [ Gate.Cnot { control = 0; target = 1 } ] );
    ( "h-cz-h-to-cnot",
      (* CZ is symmetric: operand order must not matter. *)
      [ Gate.H 1; Gate.Cz (1, 0); Gate.H 1 ],
      [ Gate.Cnot { control = 0; target = 1 } ] );
    ( "x-rz-x-flip",
      [ Gate.X 0; Gate.Rz (0.7, 0); Gate.X 0 ],
      [ Gate.Rz (-0.7, 0) ] );
    ( "x-ry-x-flip",
      [ Gate.X 1; Gate.Ry (1.1, 1); Gate.X 1 ],
      [ Gate.Ry (-1.1, 1) ] );
    ( "z-rx-z-flip",
      [ Gate.Z 0; Gate.Rx (0.3, 0); Gate.Z 0 ],
      [ Gate.Rx (-0.3, 0) ] );
    ( "z-ry-z-flip",
      [ Gate.Z 3; Gate.Ry (0.4, 3); Gate.Z 3 ],
      [ Gate.Ry (-0.4, 3) ] );
    ( "h-rx-h-to-rz",
      [ Gate.H 0; Gate.Rx (0.9, 0); Gate.H 0 ],
      [ Gate.Rz (0.9, 0) ] );
    ( "h-rz-h-to-rx",
      [ Gate.H 0; Gate.Rz (0.6, 0); Gate.H 0 ],
      [ Gate.Rx (0.6, 0) ] );
    ("sdg-x-s-to-y", [ Gate.Sdg 0; Gate.X 0; Gate.S 0 ], [ Gate.Y 0 ]);
    ("s-y-sdg-to-x", [ Gate.S 0; Gate.Y 0; Gate.Sdg 0 ], [ Gate.X 0 ]);
    ( "cnot-triple-to-swap",
      [ Gate.Cnot { control = 0; target = 1 };
        Gate.Cnot { control = 1; target = 0 };
        Gate.Cnot { control = 0; target = 1 } ],
      [ Gate.Swap (0, 1) ] );
  ]

(* (rule, input that must survive untouched).  Wire mismatches, wrong
   conjugation order (S X Sdg = -Y, not Y — only exact identities may
   fire), and patterns that almost line up. *)
let near_miss_cases =
  [
    ( "cnot-reversal",
      [ Gate.H 0; Gate.H 2; Gate.Cnot { control = 0; target = 1 };
        Gate.H 0; Gate.H 2 ] );
    ("h-x-h-to-z", [ Gate.H 0; Gate.X 1; Gate.H 0 ]);
    ("h-z-h-to-x", [ Gate.H 0; Gate.Z 0; Gate.H 1 ]);
    ("h-cz-h-to-cnot", [ Gate.H 0; Gate.Cz (1, 2); Gate.H 0 ]);
    ("x-rz-x-flip", [ Gate.X 0; Gate.Rz (0.7, 1); Gate.X 0 ]);
    ("x-ry-x-flip", [ Gate.X 0; Gate.Ry (1.1, 0); Gate.X 1 ]);
    ("z-rx-z-flip", [ Gate.Z 0; Gate.Rx (0.3, 1); Gate.Z 0 ]);
    ("z-ry-z-flip", [ Gate.Z 1; Gate.Ry (0.4, 0); Gate.Z 0 ]);
    ("h-rx-h-to-rz", [ Gate.H 0; Gate.Rx (0.9, 1); Gate.H 0 ]);
    ("h-rz-h-to-rx", [ Gate.H 1; Gate.Rz (0.6, 0); Gate.H 0 ]);
    ("sdg-x-s-to-y", [ Gate.S 0; Gate.X 0; Gate.Sdg 0 ]);
    ("s-y-sdg-to-x", [ Gate.Sdg 0; Gate.Y 0; Gate.S 0 ]);
    ( "cnot-triple-to-swap",
      [ Gate.Cnot { control = 0; target = 1 };
        Gate.Cnot { control = 1; target = 0 };
        Gate.Cnot { control = 1; target = 0 } ] );
  ]

let test_templates_fire () =
  List.iter
    (fun (name, input, expected) ->
      let got, applied = fire_one name input in
      check_bool (name ^ " pinned output") true (got = expected);
      check_bool (name ^ " reported") true (List.mem_assoc name applied);
      Testutil.assert_unitary_equal (name ^ " exact") (circ input)
        (circ expected))
    fire_cases

let test_templates_near_miss () =
  List.iter
    (fun (name, input) ->
      let got, applied = fire_one name input in
      check_bool (name ^ " near-miss untouched") true (got = input);
      check_bool (name ^ " near-miss silent") true (applied = []))
    near_miss_cases;
  (* The phase-only conjugations must not fire under ANY template: the
     full registry has to leave -Y and -X alone. *)
  List.iter
    (fun input ->
      let out, _ = Rewrite.apply_templates (circ input) in
      check_bool "phase-off conjugation untouched" true
        (Circuit.gates out = input))
    [ [ Gate.S 0; Gate.X 0; Gate.Sdg 0 ]; [ Gate.Sdg 0; Gate.Y 0; Gate.S 0 ] ]

let test_device_guards () =
  let one_way = Device.make ~name:"one-way" ~n_qubits:2 [ (0, 1) ] in
  let both = Device.make ~name:"both" ~n_qubits:2 [ (0, 1); (1, 0) ] in
  let reversal =
    [ Gate.H 0; Gate.H 1; Gate.Cnot { control = 0; target = 1 };
      Gate.H 0; Gate.H 1 ]
  in
  (* Reversing 0->1 emits CNOT 1->0, which one-way forbids. *)
  let blocked, _ = fire_one ~device:one_way "cnot-reversal" reversal in
  check_bool "reversal blocked on directed device" true (blocked = reversal);
  let ok, _ = fire_one ~device:both "cnot-reversal" reversal in
  check_int "reversal fires when legal" 1 (List.length ok);
  let cz = [ Gate.H 1; Gate.Cz (0, 1); Gate.H 1 ] in
  let backward = Device.make ~name:"backward" ~n_qubits:2 [ (1, 0) ] in
  let blocked, _ = fire_one ~device:backward "h-cz-h-to-cnot" cz in
  check_bool "CZ rewrite blocked on directed device" true (blocked = cz);
  (* SWAP introduction is only for unmapped circuits. *)
  let triple =
    [ Gate.Cnot { control = 0; target = 1 };
      Gate.Cnot { control = 1; target = 0 };
      Gate.Cnot { control = 0; target = 1 } ]
  in
  let blocked, _ = fire_one ~device:both "cnot-triple-to-swap" triple in
  check_bool "swap rewrite blocked once mapped" true (blocked = triple)

(* --- engine pass: rotation merging --- *)

let test_rotation_merge () =
  let run gates = Rewrite.merge_rotations (circ gates) in
  let c, n = run [ Gate.Rz (0.5, 0); Gate.Rz (0.25, 0) ] in
  check_int "adjacent Rz folds" 1 (Circuit.gate_count c);
  check_int "one gate eliminated" 1 n;
  Testutil.assert_unitary_equal "fold exact"
    (circ [ Gate.Rz (0.5, 0); Gate.Rz (0.25, 0) ]) c;
  (* Rz slides through the CNOT control, Rx through the target. *)
  let through_control =
    [ Gate.Rz (0.5, 0); Gate.Cnot { control = 0; target = 1 };
      Gate.Rz (0.25, 0) ]
  in
  let c, n = run through_control in
  check_int "Rz through control" 2 (Circuit.gate_count c);
  check_int "Rz through control eliminated" 1 n;
  Testutil.assert_unitary_equal "control exact" (circ through_control) c;
  let through_target =
    [ Gate.Rx (0.5, 1); Gate.Cnot { control = 0; target = 1 };
      Gate.Rx (0.25, 1) ]
  in
  let c, _ = run through_target in
  check_int "Rx through target" 2 (Circuit.gate_count c);
  Testutil.assert_unitary_equal "target exact" (circ through_target) c;
  let through_y = [ Gate.Ry (0.2, 0); Gate.Y 0; Gate.Ry (0.3, 0) ] in
  let c, _ = run through_y in
  check_int "Ry through Y" 2 (Circuit.gate_count c);
  Testutil.assert_unitary_equal "Ry exact" (circ through_y) c;
  (* Deletion only at multiples of 4 pi: Rz(2 pi) = -I is NOT identity. *)
  let c, n = run [ Gate.Rz (2.0 *. pi, 0); Gate.Rz (2.0 *. pi, 0) ] in
  check_int "4 pi deleted" 0 (Circuit.gate_count c);
  check_int "both gates eliminated" 2 n;
  let two_pi = [ Gate.Rz (pi, 0); Gate.Rz (pi, 0) ] in
  let c, _ = run two_pi in
  check_int "2 pi kept (global phase matters)" 1 (Circuit.gate_count c);
  Testutil.assert_unitary_equal "2 pi exact" (circ two_pi) c;
  (* H ends the run. *)
  let blocked = [ Gate.Rz (0.5, 0); Gate.H 0; Gate.Rz (0.25, 0) ] in
  let c, n = run blocked in
  check_int "H blocks" 0 n;
  check_bool "blocked circuit untouched" true (Circuit.gates c = blocked);
  (* Rz must NOT slide through the CNOT target. *)
  let target_block =
    [ Gate.Rz (0.5, 1); Gate.Cnot { control = 0; target = 1 };
      Gate.Rz (0.25, 1) ]
  in
  let _, n = run target_block in
  check_int "Rz blocked at target" 0 n

(* --- engine pass: phase-polynomial merging --- *)

let test_phase_merge () =
  let run gates = Rewrite.merge_phase_polynomial (circ gates) in
  (* The staq motivating example: both Ts act on the same parity term
     once the CNOT pair restores the wire, so they fold into one S. *)
  let ladder =
    [ Gate.T 1; Gate.Cnot { control = 0; target = 1 };
      Gate.Cnot { control = 0; target = 1 }; Gate.T 1 ]
  in
  let c, n = run ladder in
  check_int "ladder merged" 3 (Circuit.gate_count c);
  check_int "ladder eliminated one" 1 n;
  check_int "T-count drops to zero" 0 (Circuit.t_count c);
  Testutil.assert_unitary_equal "ladder exact" (circ ladder) c;
  (* Rz through a complemented wire folds with negation — exactly. *)
  let complemented =
    [ Gate.Rz (0.5, 1); Gate.X 1; Gate.Rz (0.25, 1); Gate.X 1 ]
  in
  let c, n = run complemented in
  check_int "complement merged" 3 (Circuit.gate_count c);
  check_int "complement eliminated one" 1 n;
  Testutil.assert_unitary_equal "complement exact" (circ complemented) c;
  (* H destroys the parity: no merge across it. *)
  let _, n = run [ Gate.T 1; Gate.H 1; Gate.T 1 ] in
  check_int "H blocks phase merge" 0 n;
  (* Different parity terms never merge. *)
  let _, n =
    run
      [ Gate.Cnot { control = 0; target = 1 }; Gate.T 1;
        Gate.Cnot { control = 0; target = 1 }; Gate.T 1 ]
  in
  check_int "distinct parities kept" 0 n;
  (* A lone diagonal gate is re-emitted verbatim, not canonicalized:
     Phase(pi/4) must stay Phase, not become T. *)
  let lone = [ Gate.Phase (pi /. 4.0, 0) ] in
  let c, _ = run lone in
  check_bool "single hit re-emits original" true (Circuit.gates c = lone)

(* --- engine pass: Clifford normalization --- *)

let test_clifford_normalize () =
  let run gates = Rewrite.normalize_cliffords (circ gates) in
  let sandwich = [ Gate.H 0; Gate.S 0; Gate.S 0; Gate.H 0 ] in
  let c, n = run sandwich in
  check_bool "HSSH = X" true (Circuit.gates c = [ Gate.X 0 ]);
  check_int "three eliminated" 3 n;
  Testutil.assert_unitary_equal "HSSH exact" (circ sandwich) c;
  (* Z X = iY: the phase is real, so the run must NOT become Y. *)
  let phased = [ Gate.X 0; Gate.Z 0 ] in
  let c, n = run phased in
  check_int "iY kept as two gates" 0 n;
  check_bool "iY untouched" true (Circuit.gates c = phased);
  (* Other wires interleave freely. *)
  let interleaved = [ Gate.H 0; Gate.X 1; Gate.X 0; Gate.H 0 ] in
  let c, _ = run interleaved in
  check_int "interleaved normalizes" 2 (Circuit.gate_count c);
  Testutil.assert_unitary_equal "interleaved exact" (circ interleaved) c;
  (* Identity runs vanish. *)
  let c, n = run [ Gate.H 0; Gate.H 0 ] in
  check_int "HH vanishes" 0 (Circuit.gate_count c);
  check_int "HH eliminated" 2 n;
  let c, _ = run [ Gate.S 0; Gate.S 0; Gate.S 0; Gate.S 0 ] in
  check_int "SSSS vanishes" 0 (Circuit.gate_count c)

(* --- metamorphic: rotation folding over every edge-angle pair --- *)

let test_metamorphic_fold () =
  let rotations =
    [ (fun t q -> Gate.Rz (t, q)); (fun t q -> Gate.Rx (t, q));
      (fun t q -> Gate.Ry (t, q)) ]
  in
  List.iter
    (fun rot ->
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              let input = circ ~n:1 [ rot a 0; rot b 0 ] in
              let folded, _ = Rewrite.merge_rotations input in
              Testutil.assert_unitary_equal
                (Printf.sprintf "fold %g + %g exact" a b)
                input folded)
            Fuzz.Gen.edge_angles)
        Fuzz.Gen.edge_angles)
    rotations

(* --- the tier --- *)

let test_apply_outcome () =
  let inert = circ [ Gate.Cnot { control = 0; target = 1 } ] in
  let out = Rewrite.apply inert in
  check_bool "no-op: applied empty" true (out.Rewrite.applied = []);
  check_bool "no-op: circuit untouched" true
    (Circuit.gates out.Rewrite.circuit = Circuit.gates inert);
  check_bool "no-op: unchecked by default" true (not out.Rewrite.checked);
  let busy =
    circ
      [ Gate.H 0; Gate.X 0; Gate.H 0; Gate.Rz (0.5, 1); Gate.Rz (0.25, 1) ]
  in
  let out = Rewrite.apply ~check:true busy in
  check_bool "checked" true (out.Rewrite.checked && out.Rewrite.ok);
  check_bool "work reported" true (out.Rewrite.applied <> []);
  Testutil.assert_unitary_equal "tier exact" busy out.Rewrite.circuit;
  check_int "tier shrinks" 2 (Circuit.gate_count out.Rewrite.circuit);
  let untouched = Rewrite.apply ~selection:Rewrite.empty_selection busy in
  check_bool "empty selection is identity" true
    (Circuit.gates untouched.Rewrite.circuit = Circuit.gates busy)

let test_apply_trace () =
  let trace = Trace.create () in
  let busy = circ [ Gate.H 0; Gate.X 0; Gate.H 0 ] in
  let _ = Rewrite.apply ~trace busy in
  let totals = Trace.counter_totals trace in
  check_bool "rewrite counters bumped" true
    (List.exists
       (fun (k, v) ->
         String.length k > 8 && String.sub k 0 8 = "rewrite/" && v > 0.0)
       totals)

(* --- optimizer integration: pinned T-count deltas --- *)

let stage_rules rules c = Optimize.optimize ~rules c

let test_benchmark_deltas () =
  (* Pinned deltas: the phase-polynomial pass is what moves the
     T-count, so a silent regression there flips these exact numbers. *)
  let adder = Decompose.to_native (Benchsuite.Classics.cuccaro_adder 3) in
  let base = stage_rules Rewrite.empty_selection adder in
  let opt = stage_rules Rewrite.default_selection adder in
  check_int "adder T-count without tier" 38 (Circuit.t_count base);
  check_int "adder T-count with tier" 24 (Circuit.t_count opt);
  check_int "adder volume without tier" 101 (Circuit.gate_count base);
  check_int "adder volume with tier" 88 (Circuit.gate_count opt);
  check_bool "adder equivalent" true
    (Qmdd.equivalent ~up_to_phase:false adder opt);
  (* The native QFT is Rz-based (T-count 0 both ways); the tier still
     buys gate volume through rotation merging. *)
  let qft = Decompose.to_native (Benchsuite.Classics.qft 4) in
  let base_q = stage_rules Rewrite.empty_selection qft in
  let opt_q = stage_rules Rewrite.default_selection qft in
  check_int "qft volume without tier" 31 (Circuit.gate_count base_q);
  check_int "qft volume with tier" 28 (Circuit.gate_count opt_q);
  check_bool "qft equivalent" true
    (Qmdd.equivalent ~up_to_phase:false qft opt_q)

(* --- README drift --- *)

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

(* Rows of the Optimization section's rule table:
   | `name` | pattern | side condition | default |. *)
let readme_rule_rows () =
  let lines = read_lines "../README.md" in
  let in_section = ref false in
  List.filter_map
    (fun line ->
      if String.length line >= 2 && String.sub line 0 2 = "##" then (
        in_section :=
          String.trim line = "## Optimization";
        None)
      else if
        !in_section && String.length line > 3
        && String.sub line 0 3 = "| `"
      then
        match String.index_from_opt line 3 '`' with
        | Some stop -> Some (line, String.sub line 3 (stop - 3))
        | None -> None
      else None)
    lines

let test_readme_table () =
  let rows = readme_rule_rows () in
  let row_names = List.map snd rows in
  check_int "one row per template" (List.length template_names)
    (List.length rows);
  List.iter
    (fun n ->
      check_bool (n ^ " documented in README") true (List.mem n row_names))
    template_names;
  List.iter
    (fun n ->
      check_bool (n ^ " is a registered template") true (List.mem n template_names))
    row_names;
  (* Pattern and side-condition cells must match the registry verbatim. *)
  List.iter
    (fun (line, name) ->
      match Rewrite.find_rule name with
      | None -> Alcotest.failf "%s: not a rule" name
      | Some r ->
        let cells =
          String.split_on_char '|' line |> List.map String.trim
          |> List.filter (fun s -> s <> "")
        in
        (match cells with
        | [ _; pattern; guard; dflt ] ->
          check_bool (name ^ " pattern in sync") true
            (pattern = r.Rewrite.pattern_doc);
          check_bool (name ^ " guard in sync") true
            (guard = r.Rewrite.guard_doc);
          check_bool (name ^ " default in sync") true
            (dflt = if r.Rewrite.default_on then "yes" else "no")
        | _ -> Alcotest.failf "%s: malformed table row" name))
    rows;
  (* Every engine pass is mentioned in the section too. *)
  let lines = read_lines "../README.md" in
  let section =
    let in_section = ref false in
    List.filter
      (fun line ->
        if String.length line >= 2 && String.sub line 0 2 = "##" then (
          in_section := String.trim line = "## Optimization";
          false)
        else !in_section)
      lines
    |> String.concat "\n"
  in
  List.iter
    (fun p ->
      let needle = "`" ^ p ^ "`" in
      let found =
        let nl = String.length needle and sl = String.length section in
        let rec scan i =
          i + nl <= sl && (String.sub section i nl = needle || scan (i + 1))
        in
        scan 0
      in
      check_bool (p ^ " described in README") true found)
    Rewrite.engine_pass_names

let () =
  Alcotest.run "rewrite"
    [
      ( "registry",
        [
          Alcotest.test_case "completeness" `Quick test_registry_complete;
          Alcotest.test_case "selection parsing" `Quick test_selection_parsing;
        ] );
      ( "templates",
        [
          Alcotest.test_case "fire" `Quick test_templates_fire;
          Alcotest.test_case "near miss" `Quick test_templates_near_miss;
          Alcotest.test_case "device guards" `Quick test_device_guards;
        ] );
      ( "engine passes",
        [
          Alcotest.test_case "rotation merge" `Quick test_rotation_merge;
          Alcotest.test_case "phase merge" `Quick test_phase_merge;
          Alcotest.test_case "clifford normalize" `Quick test_clifford_normalize;
          Alcotest.test_case "metamorphic fold" `Quick test_metamorphic_fold;
        ] );
      ( "tier",
        [
          Alcotest.test_case "apply outcome" `Quick test_apply_outcome;
          Alcotest.test_case "apply trace" `Quick test_apply_trace;
          Alcotest.test_case "benchmark deltas" `Quick test_benchmark_deltas;
        ] );
      ( "docs",
        [ Alcotest.test_case "README table" `Quick test_readme_table ] );
    ]
