(* The trace subsystem: spans, snapshots, counters, the JSON tree, and
   the counters surfaced from Qmdd and Route. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let sample =
  Circuit.make ~n:3
    [
      Gate.T 0;
      Gate.H 1;
      Gate.Cnot { control = 0; target = 1 };
      Gate.Cnot { control = 1; target = 2 };
    ]

(* --- sinks and spans --- *)

let test_disabled_records_nothing () =
  let t = Trace.disabled in
  check_bool "disabled is not enabled" false (Trace.enabled t);
  let sp = Trace.start t "a" in
  Trace.stop t sp ();
  let sp = Trace.start_with t "b" sample in
  Trace.stop_with t sp ~counters:[ ("k", 1.0) ] sample;
  check_int "no spans recorded" 0 (List.length (Trace.spans t));
  Alcotest.(check (float 0.0)) "no time" 0.0 (Trace.total_wall_seconds t)

let test_recording_spans () =
  let t = Trace.create () in
  check_bool "created sink is enabled" true (Trace.enabled t);
  let sp = Trace.start_with t "first" sample in
  Trace.stop_with t sp ~counters:[ ("swaps", 4.0) ] sample;
  let sp = Trace.start t "second" in
  Trace.stop t sp ();
  match Trace.spans t with
  | [ a; b ] ->
    check_string "first name" "first" a.Trace.name;
    check_string "second name" "second" b.Trace.name;
    check_int "completion order" 0 a.Trace.index;
    check_int "completion order" 1 b.Trace.index;
    check_bool "wall time non-negative" true (a.Trace.wall_seconds >= 0.0);
    (match (a.Trace.before, a.Trace.after) with
    | Some before, Some after ->
      check_int "before volume" 4 before.Trace.gate_volume;
      check_int "after cnots" 2 after.Trace.cnot_count;
      check_int "t count" 1 before.Trace.t_count
    | _ -> Alcotest.fail "snapshots missing");
    check_bool "counters kept" true (a.Trace.counters = [ ("swaps", 4.0) ]);
    check_bool "bare span has no snapshots" true
      (b.Trace.before = None && b.Trace.after = None)
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let test_nested_spans_complete_inner_first () =
  let t = Trace.create () in
  let outer = Trace.start t "outer" in
  let inner = Trace.start t "inner" in
  Trace.stop t inner ();
  Trace.stop t outer ();
  match Trace.spans t with
  | [ a; b ] ->
    check_string "inner completes first" "inner" a.Trace.name;
    check_string "outer completes last" "outer" b.Trace.name;
    check_bool "outer at least as long" true
      (b.Trace.wall_seconds >= a.Trace.wall_seconds)
  | _ -> Alcotest.fail "expected 2 spans"

let test_monotonic_clock () =
  let a = Trace.now_ns () in
  let b = Trace.now_ns () in
  check_bool "clock does not go backwards" true (Int64.compare b a >= 0)

(* --- snapshots --- *)

let test_snapshot_fields () =
  let s = Trace.snapshot sample in
  check_int "gate volume" 4 s.Trace.gate_volume;
  check_int "t count" 1 s.Trace.t_count;
  check_int "cnot count" 2 s.Trace.cnot_count;
  check_int "depth" 3 (Circuit.depth sample);
  Alcotest.(check (float 1e-9))
    "cost defaults to eqn2"
    (Cost.evaluate Cost.eqn2 sample)
    s.Trace.cost

(* --- JSON --- *)

let roundtrip j =
  match Trace.Json.of_string (Trace.Json.to_string j) with
  | Ok j' -> j'
  | Error msg -> Alcotest.failf "reparse failed: %s" msg

let test_json_roundtrip () =
  let j =
    Trace.Json.(
      Obj
        [
          ("null", Null);
          ("bool", Bool true);
          ("int", Int (-42));
          ("float", Float 1.5);
          ("string", String "with \"quotes\", \\ and \ncontrol\tchars");
          ("list", List [ Int 1; Int 2; Int 3 ]);
          ("nested", Obj [ ("empty_list", List []); ("empty_obj", Obj []) ]);
        ])
  in
  check_bool "compact round-trips" true (roundtrip j = j);
  match Trace.Json.of_string (Trace.Json.to_string ~pretty:true j) with
  | Ok j' -> check_bool "pretty round-trips" true (j' = j)
  | Error msg -> Alcotest.failf "pretty reparse failed: %s" msg

let test_json_interchange () =
  (match Trace.Json.of_string "  {\"a\" : [1, 2.5, -3e2], \"b\": \"\\u0041\"} " with
  | Ok j ->
    check_bool "unicode escape" true
      (Trace.Json.member "b" j = Some (Trace.Json.String "A"));
    (match Trace.Json.member "a" j with
    | Some (Trace.Json.List [ a; b; c ]) ->
      check_bool "int" true (Trace.Json.number a = Some 1.0);
      check_bool "float" true (Trace.Json.number b = Some 2.5);
      check_bool "exponent" true (Trace.Json.number c = Some (-300.0))
    | _ -> Alcotest.fail "array missing")
  | Error msg -> Alcotest.failf "parse failed: %s" msg);
  check_bool "trailing garbage rejected" true
    (Result.is_error (Trace.Json.of_string "true false"));
  check_bool "bad input rejected" true
    (Result.is_error (Trace.Json.of_string "{\"a\":}"))

let test_json_non_finite () =
  check_string "nan becomes null" "null"
    (Trace.Json.to_string (Trace.Json.Float nan));
  check_string "inf becomes null" "null"
    (Trace.Json.to_string (Trace.Json.Float infinity))

let test_trace_to_json () =
  let t = Trace.create () in
  let sp = Trace.start_with t "pass" sample in
  Trace.stop_with t sp ~counters:[ ("k", 2.0) ] sample;
  let doc = Trace.to_json ~meta:[ ("input", Trace.Json.String "x.qc") ] (Trace.spans t) in
  let doc = roundtrip doc in
  check_bool "meta kept" true
    (Trace.Json.member "input" doc = Some (Trace.Json.String "x.qc"));
  match Trace.Json.member "passes" doc with
  | Some (Trace.Json.List [ p ]) ->
    check_bool "span name" true
      (Trace.Json.member "name" p = Some (Trace.Json.String "pass"));
    (match Trace.Json.member "after" p with
    | Some after ->
      check_bool "snapshot gate volume" true
        (Option.bind (Trace.Json.member "gate_volume" after) Trace.Json.number
        = Some 4.0)
    | None -> Alcotest.fail "after snapshot missing");
    (match Trace.Json.member "counters" p with
    | Some counters ->
      check_bool "counter value" true
        (Option.bind (Trace.Json.member "k" counters) Trace.Json.number
        = Some 2.0)
    | None -> Alcotest.fail "counters missing")
  | _ -> Alcotest.fail "passes list missing"

let test_to_text () =
  let t = Trace.create () in
  let sp = Trace.start_with t "route" sample in
  Trace.stop_with t sp ~counters:[ ("swaps_inserted", 6.0) ] sample;
  let text = Trace.to_text (Trace.spans t) in
  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  check_bool "names the pass" true (contains text "route");
  check_bool "prints the counter" true (contains text "swaps_inserted")

(* --- counters surfaced by Qmdd and Route --- *)

let sample' =
  Circuit.make ~n:2
    [ Gate.H 0; Gate.Cnot { control = 0; target = 1 }; Gate.T 1 ]

let test_qmdd_stats () =
  let m = Qmdd.create ~n:2 in
  let s0 = Qmdd.stats m in
  check_int "fresh manager has no nodes" 0 s0.Qmdd.unique_nodes;
  let _ = Qmdd.of_circuit m sample' in
  let s = Qmdd.stats m in
  check_bool "nodes allocated" true (s.Qmdd.allocated > 0);
  check_bool "peak covers live" true (s.Qmdd.peak_unique_nodes >= s.Qmdd.unique_nodes);
  check_bool "unique table populated" true (s.Qmdd.unique_nodes > 0);
  (* Building the same diagram again hits the caches. *)
  let _ = Qmdd.of_circuit m sample' in
  let s2 = Qmdd.stats m in
  check_bool "mul cache hit on repeat" true
    (s2.Qmdd.mul_cache_hits > s.Qmdd.mul_cache_hits)

let test_qmdd_equivalent_stats_observer () =
  let seen = ref None in
  let eq =
    Qmdd.equivalent ~up_to_phase:false
      ~stats:(fun s -> seen := Some s)
      sample' sample'
  in
  check_bool "equivalent" true eq;
  match !seen with
  | Some s -> check_bool "observer saw allocations" true (s.Qmdd.allocated > 0)
  | None -> Alcotest.fail "stats observer never called"

let test_route_stats () =
  (* Fig. 5's example: CNOT(q5, q10) on ibmqx3 needs a 2-hop CTR chain
     (q5 -> q12 -> q11), i.e. 2 SWAPs out and 2 back. *)
  let d = Device.Ibm.ibmqx3 in
  let c = Circuit.make ~n:16 [ Gate.Cnot { control = 5; target = 10 } ] in
  let stats = Route.new_stats () in
  let _ = Route.route_circuit_swaps ~stats d c in
  check_int "one rerouted CNOT" 1 stats.Route.rerouted_cnots;
  check_int "four SWAPs (out and back)" 4 stats.Route.swaps_inserted;
  check_int "two hops" 2 stats.Route.max_path_hops;
  check_int "hops accumulated" 2 stats.Route.swap_hops;
  (* A coupled pair routes clean: no counters move. *)
  let stats2 = Route.new_stats () in
  let coupled = Circuit.make ~n:16 [ Gate.Cnot { control = 1; target = 2 } ] in
  let _ = Route.route_circuit_swaps ~stats:stats2 d coupled in
  check_int "coupled pair not rerouted" 0 stats2.Route.rerouted_cnots;
  check_int "no swaps for coupled pair" 0 stats2.Route.swaps_inserted

let test_optimize_iteration_spans () =
  let t = Trace.create () in
  (* H H cancels, so at least one improving sweep happens, then a final
     rejected sweep: at least 2 iteration spans. *)
  let c = Circuit.make ~n:2 [ Gate.H 0; Gate.H 0; Gate.T 1 ] in
  let optimized = Optimize.optimize ~trace:t ~stage:"test" c in
  check_int "H pair cancelled" 1 (Circuit.gate_count optimized);
  let spans = Trace.spans t in
  check_bool "at least two iterations" true (List.length spans >= 2);
  List.iteri
    (fun i sp ->
      check_string "iteration naming"
        (Printf.sprintf "test/iteration-%d" (i + 1))
        sp.Trace.name)
    spans;
  let last = List.nth spans (List.length spans - 1) in
  check_bool "last sweep did not improve" true
    (last.Trace.counters = [ ("improved", 0.0) ])

let test_optimize_iterations_count_accepted_sweeps () =
  (* [outcome.iterations] counts accepted sweeps on every exit path.  A
     converged run traces one span per sweep, the final rejected one
     included, so spans = iterations + 1; a capped run stops before the
     would-be rejected sweep, so spans = iterations. *)
  let c = Circuit.make ~n:2 [ Gate.H 0; Gate.H 0; Gate.T 1 ] in
  let t = Trace.create () in
  let converged = Optimize.optimize_budgeted ~trace:t ~stage:"conv" c in
  check_bool "run converged" true
    ((not converged.Optimize.hit_iteration_cap)
    && not converged.Optimize.hit_deadline);
  check_int "converged: spans = iterations + 1"
    (converged.Optimize.iterations + 1)
    (List.length (Trace.spans t));
  let t2 = Trace.create () in
  let capped =
    Optimize.optimize_budgeted ~trace:t2 ~stage:"cap" ~max_iterations:1 c
  in
  check_bool "run capped" true capped.Optimize.hit_iteration_cap;
  check_int "capped: one accepted sweep" 1 capped.Optimize.iterations;
  check_int "capped: spans = iterations" capped.Optimize.iterations
    (List.length (Trace.spans t2))

(* --- named counters --- *)

let test_named_counters () =
  let t = Trace.create () in
  check_bool "fresh sink has no counters" true (Trace.counter_totals t = []);
  Trace.bump t "hits" 1.0;
  Trace.bump t "misses" 1.0;
  Trace.bump t "hits" 2.0;
  check_bool "accumulated and sorted" true
    (Trace.counter_totals t = [ ("hits", 3.0); ("misses", 1.0) ]);
  (* Counters live beside spans, not inside them. *)
  check_int "no spans from bumps" 0 (List.length (Trace.spans t))

let test_named_counters_disabled_free () =
  let t = Trace.disabled in
  Trace.bump t "hits" 1.0;
  check_bool "disabled sink stays empty" true (Trace.counter_totals t = [])

let () =
  Alcotest.run "trace"
    [
      ( "sinks",
        [
          Alcotest.test_case "disabled records nothing" `Quick
            test_disabled_records_nothing;
          Alcotest.test_case "recording spans" `Quick test_recording_spans;
          Alcotest.test_case "nested spans" `Quick
            test_nested_spans_complete_inner_first;
          Alcotest.test_case "monotonic clock" `Quick test_monotonic_clock;
          Alcotest.test_case "snapshot fields" `Quick test_snapshot_fields;
        ] );
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "interchange" `Quick test_json_interchange;
          Alcotest.test_case "non-finite" `Quick test_json_non_finite;
          Alcotest.test_case "trace document" `Quick test_trace_to_json;
          Alcotest.test_case "text table" `Quick test_to_text;
        ] );
      ( "pass counters",
        [
          Alcotest.test_case "qmdd manager stats" `Quick test_qmdd_stats;
          Alcotest.test_case "qmdd equivalent observer" `Quick
            test_qmdd_equivalent_stats_observer;
          Alcotest.test_case "route stats" `Quick test_route_stats;
          Alcotest.test_case "optimize iteration spans" `Quick
            test_optimize_iteration_spans;
          Alcotest.test_case "optimize iterations count accepted sweeps"
            `Quick test_optimize_iterations_count_accepted_sweeps;
        ] );
      ( "named counters",
        [
          Alcotest.test_case "bump accumulates" `Quick test_named_counters;
          Alcotest.test_case "disabled sink is free" `Quick
            test_named_counters_disabled_free;
        ] );
    ]
