(* End-to-end exit-code contract of the qsc binary (README "Failure
   semantics"):

     0    success
     123  reported failure (diagnostics, MISMATCH, failed properties)
     124  command-line misuse (unknown subcommand/option, bad value)
     125  internal error (unexpected exception)

   These run the real executable in a real process — the only way to
   test what the shell actually observes.  dune runs this suite with
   the test directory as cwd, so the binary is at ../bin/qsc.exe and
   the malformed inputs at corpus/. *)

let check_int = Alcotest.(check int)

let qsc = Filename.concat ".." (Filename.concat "bin" "qsc.exe")

let run args =
  Sys.command (Printf.sprintf "%s %s >/dev/null 2>&1" (Filename.quote qsc) args)

(* A well-formed circuit written fresh so the suite stays self-contained
   (everything under corpus/ is malformed on purpose). *)
let with_good_qasm f =
  let path = Filename.temp_file "qsc-cli" ".qasm" in
  Out_channel.with_open_text path (fun oc ->
      output_string oc
        "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx \
         q[0],q[1];\n");
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let with_other_qasm f =
  let path = Filename.temp_file "qsc-cli" ".qasm" in
  Out_channel.with_open_text path (fun oc ->
      output_string oc "OPENQASM 2.0;\nqreg q[2];\nx q[0];\n");
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let test_exit_0_success () =
  check_int "devices" 0 (run "devices");
  with_good_qasm (fun good ->
      check_int "compile" 0
        (run (Printf.sprintf "compile -d ibmqx4 %s" (Filename.quote good)));
      check_int "check (self)" 0
        (run
           (Printf.sprintf "check %s %s" (Filename.quote good)
              (Filename.quote good)));
      check_int "lint --json" 0
        (run (Printf.sprintf "lint %s --json" (Filename.quote good)));
      check_int "analyze" 0
        (run (Printf.sprintf "analyze %s" (Filename.quote good)));
      check_int "analyze --json" 0
        (run (Printf.sprintf "analyze %s --json" (Filename.quote good)));
      check_int "compile --fold-states" 0
        (run
           (Printf.sprintf "compile -d ibmqx4 --fold-states %s"
              (Filename.quote good))));
  check_int "fuzz --list" 0 (run "fuzz --list");
  check_int "fuzz (clean tree)" 0
    (run "fuzz --property qc-roundtrip --count 5 --seed 42 --corpus-dir ''");
  check_int "--help" 0 (run "--help");
  check_int "--version" 0 (run "--version")

let test_exit_123_reported_failure () =
  (* Malformed input: a structured diagnostic, never a backtrace. *)
  check_int "compile malformed" 123
    (run "compile -d ibmqx4 corpus/truncated.qasm");
  check_int "compile nan angle" 123
    (run "compile -d ibmqx4 corpus/nan-angle.qasm");
  (* Formal non-equivalence. *)
  with_good_qasm (fun a ->
      with_other_qasm (fun b ->
          check_int "check non-equivalent" 123
            (run
               (Printf.sprintf "check %s %s" (Filename.quote a)
                  (Filename.quote b)))));
  (* A missing-inputs complaint is a reported failure (the parse layer
     accepted the command line; the subcommand rejected its meaning). *)
  check_int "compile without inputs" 123 (run "compile -d ibmqx4");
  (* An unknown property name likewise. *)
  check_int "fuzz unknown property" 123 (run "fuzz --property no-such-thing")

let test_exit_124_misuse () =
  check_int "unknown option" 124 (run "compile --no-such-flag");
  check_int "unknown subcommand" 124 (run "frobnicate");
  with_good_qasm (fun good ->
      check_int "bad device value" 124
        (run (Printf.sprintf "compile -d no-such-device %s" (Filename.quote good))));
  check_int "bad int value" 124 (run "fuzz --count notanint")

let test_exit_125_internal_error () =
  (* The debug hook raises before dispatch, standing in for any bug
     that escapes the classified-exception boundary. *)
  let code =
    Sys.command
      (Printf.sprintf "QSC_DEBUG_INJECT_CRASH=boom %s devices >/dev/null 2>&1"
         (Filename.quote qsc))
  in
  check_int "injected crash" 125 code

let test_fuzz_repro_corpus_replays () =
  (* Every stored repro is a past fuzz failure; on a fixed tree the
     binary must replay it clean.  Exercises --seed/--count 1 replay
     through the real CLI, not just the library. *)
  Sys.readdir "corpus/fuzz" |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".repro")
  |> List.iter (fun f ->
         let text =
           In_channel.with_open_text (Filename.concat "corpus/fuzz" f)
             In_channel.input_all
         in
         match Fuzz.repro_of_string text with
         | Error e -> Alcotest.failf "%s: unreadable repro: %s" f e
         | Ok (property, seed, _case) ->
           check_int
             (Printf.sprintf "%s replays clean" f)
             0
             (run
                (Printf.sprintf
                   "fuzz --property %s --seed %d --count 1 --corpus-dir ''"
                   (Filename.quote property) seed)))

let () =
  Alcotest.run "cli"
    [
      ( "exit codes",
        [
          Alcotest.test_case "0: success" `Quick test_exit_0_success;
          Alcotest.test_case "123: reported failure" `Quick
            test_exit_123_reported_failure;
          Alcotest.test_case "124: misuse" `Quick test_exit_124_misuse;
          Alcotest.test_case "125: internal error" `Quick
            test_exit_125_internal_error;
          Alcotest.test_case "fuzz repro corpus replays clean" `Quick
            test_fuzz_repro_corpus_replays;
        ] );
    ]
