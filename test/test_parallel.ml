(* The domain-parallel runner and the shared-state ownership rules it
   depends on: Parallel.map/map_list/init determinism and lowest-index
   failure propagation; the Trace named-counter mutex (many domains
   hammering one sink lose no bumps); QMDD manager isolation (domains
   compiling concurrently produce byte-identical reports and never
   observe each other's nodes); and Fuzz replay determinism (the same
   failure, seed and shrunk case at every --jobs value). *)

module J = Trace.Json

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* --- the runner --- *)

let test_map_matches_sequential () =
  let xs = Array.init 100 (fun i -> i) in
  let f i = (i * 7919) mod 4093 in
  let expected = Array.map f xs in
  List.iter
    (fun jobs ->
      check_bool
        (Printf.sprintf "map at jobs=%d equals Array.map" jobs)
        true
        (Parallel.map ~jobs f xs = expected))
    [ 1; 2; 4; 8 ];
  check_bool "empty input" true (Parallel.map ~jobs:4 f [||] = [||]);
  check_bool "single element" true (Parallel.map ~jobs:4 f [| 9 |] = [| f 9 |])

let test_map_list_and_init () =
  let xs = List.init 33 (fun i -> i) in
  let f i = i * i in
  check_bool "map_list preserves order" true
    (Parallel.map_list ~jobs:4 f xs = List.map f xs);
  check_bool "init matches Array.init" true
    (Parallel.init ~jobs:4 33 f = Array.init 33 f)

let test_lowest_index_failure_wins () =
  (* Several tasks raise; the runner must re-raise the exception of the
     lowest-indexed failing task, exactly as a sequential
     left-to-right loop would. *)
  let f i = if i >= 3 && i mod 2 = 1 then failwith (string_of_int i) else i in
  List.iter
    (fun jobs ->
      match Parallel.map ~jobs f (Array.init 20 (fun i -> i)) with
      | _ -> Alcotest.fail "expected a raise"
      | exception Failure msg ->
        check_string
          (Printf.sprintf "lowest failing index at jobs=%d" jobs)
          "3" msg)
    [ 1; 2; 8 ]

(* --- the Trace named-counter mutex (satellite bugfix) --- *)

let test_trace_bump_hammer () =
  (* Pre-fix, Trace.bump mutated an unsynchronized Hashtbl; four
     domains incrementing the same counters lost updates (or crashed).
     Post-fix the totals are exact. *)
  let sink = Trace.create () in
  let domains = 4 and per_domain = 25_000 in
  ignore
    (Parallel.init ~jobs:domains domains (fun d ->
         for _ = 1 to per_domain do
           Trace.bump sink "cache.hits" 1.0;
           if d mod 2 = 0 then Trace.bump sink "cache.misses" 2.0
         done));
  let totals = Trace.counter_totals sink in
  let total name =
    match List.assoc_opt name totals with Some v -> v | None -> 0.0
  in
  check_bool "hits exact" true
    (total "cache.hits" = float_of_int (domains * per_domain));
  check_bool "misses exact" true
    (total "cache.misses" = float_of_int (domains / 2 * per_domain * 2))

(* --- QMDD manager isolation --- *)

let sample_qasm =
  "OPENQASM 2.0;\n\
   include \"qelib1.inc\";\n\
   qreg q[3];\n\
   h q[0];\n\
   cx q[0],q[1];\n\
   cx q[1],q[2];\n\
   t q[2];\n"

let scrubbed_report_json source =
  let device = Device.find "ibmqx4" in
  let options = Compiler.default_options ~device in
  match Compiler.parse_source_checked ~format:"qasm" source with
  | Error d -> Alcotest.failf "parse failed: %s" (Diagnostic.to_string d)
  | Ok input -> (
    match Compiler.compile_checked options input with
    | Error ds ->
      Alcotest.failf "compile failed: %s"
        (String.concat "; " (List.map Diagnostic.to_string ds))
    | Ok report -> (
      match Compiler.report_to_json ~cost:options.Compiler.cost report with
      | J.Obj fields ->
        J.to_string
          (J.Obj
             (List.map
                (fun (k, v) ->
                  match k with
                  | "elapsed_seconds" | "verification_seconds" -> (k, J.Null)
                  | _ -> (k, v))
                fields))
      | other -> J.to_string other))

let test_concurrent_compiles_are_byte_identical () =
  (* Two domains compiling different sources at once: each compile owns
     its QMDD manager, so the reports are byte-identical to the
     sequential ones (timings scrubbed on both sides). *)
  let sources =
    [| sample_qasm; sample_qasm ^ "x q[0];\n"; sample_qasm ^ "z q[1];\n" |]
  in
  let sequential = Array.map scrubbed_report_json sources in
  let parallel = Parallel.map ~jobs:3 scrubbed_report_json sources in
  Array.iteri
    (fun i seq ->
      check_string
        (Printf.sprintf "report %d byte-identical" i)
        seq parallel.(i))
    sequential

let test_qmdd_stats_never_see_other_domains () =
  (* Each domain builds a diagram in its own manager; the stats it
     reads must be exactly what a solo run of the same build records —
     any cross-domain sharing of the unique table or caches would
     perturb the node counts. *)
  let build i =
    let m = Qmdd.create ~n:3 in
    let circuit =
      Circuit.make ~n:3
        [
          Gate.H 0;
          Gate.Cnot { control = 0; target = 1 };
          Gate.Cnot { control = 1; target = (2 - (i mod 2)) };
          Gate.T (i mod 3);
        ]
    in
    ignore (Qmdd.of_circuit m circuit);
    let s = Qmdd.stats m in
    (s.Qmdd.allocated, s.Qmdd.unique_nodes, s.Qmdd.peak_unique_nodes)
  in
  let solo = Array.init 8 build in
  let together = Parallel.init ~jobs:4 8 build in
  Array.iteri
    (fun i (a, u, p) ->
      let a', u', p' = together.(i) in
      check_int (Printf.sprintf "allocated %d" i) a a';
      check_int (Printf.sprintf "unique %d" i) u u';
      check_int (Printf.sprintf "peak %d" i) p p')
    solo

(* --- Fuzz replay determinism (satellite bugfix) --- *)

(* A synthetic property whose verdict depends only on the case payload:
   the generator draws one integer from the per-case RNG state, and the
   check fails when that integer hits a residue class.  Which case index
   fails first is therefore a pure function of the run seed — exactly
   what the jobs-independence guarantee must preserve. *)
let synthetic_property =
  {
    Fuzz.Property.name = "synthetic-residue";
    doc = "fails when the drawn integer is divisible by 7";
    paper = "test-only";
    gen =
      (fun _config st ->
        Fuzz.Source_case
          { ext = "txt"; text = string_of_int (Random.State.int st 1000) });
    check =
      (fun case ->
        match case with
        | Fuzz.Source_case { text; _ } -> (
          match int_of_string_opt (String.trim text) with
          | Some v when v mod 7 = 0 ->
            Fuzz.Property.Fail (Printf.sprintf "residue hit: %d" v)
          | _ -> Fuzz.Property.Pass)
        | _ -> Fuzz.Property.Pass);
  }

let failure_view (f : Fuzz.failure) =
  ( f.Fuzz.property,
    f.Fuzz.seed,
    Fuzz.case_to_string f.Fuzz.case,
    Fuzz.case_to_string f.Fuzz.shrunk,
    f.Fuzz.message,
    f.Fuzz.shrink_steps )

let run_synthetic ~jobs =
  match Fuzz.run ~seed:11 ~count:200 ~jobs [ synthetic_property ] with
  | [ summary ] -> (summary.Fuzz.cases, List.map failure_view summary.Fuzz.failures)
  | other -> Alcotest.failf "expected one summary, got %d" (List.length other)

let test_fuzz_jobs_replay_determinism () =
  let seq_cases, seq_failures = run_synthetic ~jobs:1 in
  check_bool "the synthetic property does fail" true (seq_failures <> []);
  List.iter
    (fun jobs ->
      let cases, failures = run_synthetic ~jobs in
      check_int (Printf.sprintf "cases at jobs=%d" jobs) seq_cases cases;
      check_bool
        (Printf.sprintf "identical failure at jobs=%d" jobs)
        true
        (failures = seq_failures))
    [ 2; 8 ];
  (* The reported seed really replays: regenerate the case from it and
     re-check. *)
  match seq_failures with
  | (_, seed, case_text, _, _, _) :: _ ->
    let regenerated =
      synthetic_property.Fuzz.Property.gen Fuzz.default_config
        (Random.State.make [| seed |])
    in
    check_string "replay seed regenerates the failing case" case_text
      (Fuzz.case_to_string regenerated);
    (match synthetic_property.Fuzz.Property.check regenerated with
    | Fuzz.Property.Fail _ -> ()
    | Fuzz.Property.Pass -> Alcotest.fail "replayed case must still fail")
  | [] -> Alcotest.fail "unreachable: failure list checked non-empty above"

let () =
  Alcotest.run "parallel"
    [
      ( "runner",
        [
          Alcotest.test_case "map matches sequential" `Quick
            test_map_matches_sequential;
          Alcotest.test_case "map_list and init" `Quick test_map_list_and_init;
          Alcotest.test_case "lowest-index failure wins" `Quick
            test_lowest_index_failure_wins;
        ] );
      ( "ownership",
        [
          Alcotest.test_case "trace bump hammer" `Quick test_trace_bump_hammer;
          Alcotest.test_case "concurrent compiles byte-identical" `Quick
            test_concurrent_compiles_are_byte_identical;
          Alcotest.test_case "qmdd stats stay domain-local" `Quick
            test_qmdd_stats_never_see_other_domains;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "replay determinism across jobs" `Quick
            test_fuzz_jobs_replay_determinism;
        ] );
    ]
