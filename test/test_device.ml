let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let check_float name expected actual =
  Alcotest.(check (float 1e-9)) name expected actual

(* Table 2 of the paper: coupling complexity per device. *)
let test_table2_complexities () =
  check_float "ibmqx2" 0.3 (Device.coupling_complexity Device.Ibm.ibmqx2);
  check_float "ibmqx3" (20.0 /. 240.0)
    (Device.coupling_complexity Device.Ibm.ibmqx3);
  check_float "ibmqx4" 0.3 (Device.coupling_complexity Device.Ibm.ibmqx4);
  check_float "ibmqx5" (22.0 /. 240.0)
    (Device.coupling_complexity Device.Ibm.ibmqx5);
  check_float "ibmq_16" (18.0 /. 182.0)
    (Device.coupling_complexity Device.Ibm.ibmq_16)

let test_device_sizes () =
  check_int "ibmqx2 qubits" 5 (Device.n_qubits Device.Ibm.ibmqx2);
  check_int "ibmqx3 qubits" 16 (Device.n_qubits Device.Ibm.ibmqx3);
  check_int "ibmqx4 qubits" 5 (Device.n_qubits Device.Ibm.ibmqx4);
  check_int "ibmqx5 qubits" 16 (Device.n_qubits Device.Ibm.ibmqx5);
  check_int "ibmq_16 qubits" 14 (Device.n_qubits Device.Ibm.ibmq_16);
  check_int "big96 qubits" 96 (Device.n_qubits Device.Ibm.big96)

let test_directed_coupling () =
  let d = Device.Ibm.ibmqx4 in
  (* ibmqx4 = {1:[0], 2:[0,1], 3:[2,4], 4:[2]} *)
  check_bool "1 -> 0 allowed" true (Device.allows_cnot d ~control:1 ~target:0);
  check_bool "0 -> 1 not native" false (Device.allows_cnot d ~control:0 ~target:1);
  check_bool "0,1 coupled undirected" true (Device.coupled d 0 1);
  check_bool "0,3 not coupled" false (Device.coupled d 0 3);
  check_bool "neighbors of 2" true (Device.neighbors d 2 = [ 0; 1; 3; 4 ])

let test_fig5_adjacency () =
  (* In Fig. 5 the CTR route q5 -> q12 -> q11 -> (CNOT q11, q10) exists on
     ibmqx3: check the underlying undirected edges. *)
  let d = Device.Ibm.ibmqx3 in
  check_bool "q5,q12 coupled" true (Device.coupled d 5 12);
  check_bool "q12,q11 coupled" true (Device.coupled d 12 11);
  check_bool "q11,q10 coupled" true (Device.coupled d 11 10);
  check_bool "q5,q10 not coupled" false (Device.coupled d 5 10)

let test_connectivity () =
  List.iter
    (fun d ->
      check_bool (Device.name d ^ " connected") true (Device.is_connected d))
    (Device.Ibm.all @ [ Device.Ibm.big96 ])

let test_simulator () =
  let s = Device.simulator ~n_qubits:8 in
  check_float "simulator complexity 1" 1.0 (Device.coupling_complexity s);
  check_bool "any cnot" true (Device.allows_cnot s ~control:7 ~target:0);
  check_bool "is_simulator" true (Device.is_simulator s);
  check_bool "real device not simulator" false
    (Device.is_simulator Device.Ibm.ibmqx2)

let test_dict_roundtrip () =
  let d =
    Device.of_dict_string ~name:"custom" ~n_qubits:5
      "{0:[1,2], 1:[2], 3:[2,4], 4:[2]}"
  in
  check_float "parsed complexity" 0.3 (Device.coupling_complexity d);
  let reparsed =
    Device.of_dict_string ~name:"custom2" ~n_qubits:5 (Device.to_dict_string d)
  in
  check_bool "round trip" true
    (Device.couplings d = Device.couplings reparsed);
  (* The paper's published map strings parse to the shipped devices. *)
  let qx2 =
    Device.of_dict_string ~name:"qx2" ~n_qubits:5 "{0:[1,2], 1:[2], 3:[2,4], 4:[2]}"
  in
  check_bool "matches built-in ibmqx2" true
    (Device.couplings qx2 = Device.couplings Device.Ibm.ibmqx2)

let test_dict_errors () =
  let expect_invalid s =
    match Device.of_dict_string ~name:"bad" ~n_qubits:5 s with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail ("accepted malformed " ^ s)
  in
  expect_invalid "0:[1]";
  expect_invalid "{0:1}";
  expect_invalid "{0:[x]}";
  expect_invalid "{9:[1]}"

let test_make_errors () =
  (* Exact messages: they are part of the API surface users debug
     coupling maps with. *)
  let expect_message msg pairs =
    Alcotest.check_raises msg (Invalid_argument msg) (fun () ->
        ignore (Device.make ~name:"bad" ~n_qubits:4 pairs))
  in
  expect_message "Device.make: self-coupling" [ (0, 0) ];
  expect_message "Device.make: coupling (0,9) outside register" [ (0, 9) ];
  expect_message "Device.make: duplicate coupling (0,1)" [ (0, 1); (0, 1) ];
  Alcotest.check_raises "zero-qubit register"
    (Invalid_argument "Device.make: need at least one qubit") (fun () ->
      ignore (Device.make ~name:"bad" ~n_qubits:0 []))

let test_tokyo20 () =
  let d = Device.Ibm.tokyo20 in
  check_int "20 qubits" 20 (Device.n_qubits d);
  check_bool "connected" true (Device.is_connected d);
  (* Bidirectional map: every coupling exists in both directions. *)
  check_bool "bidirectional" true
    (List.for_all
       (fun (a, b) -> Device.allows_cnot d ~control:b ~target:a)
       (Device.couplings d));
  check_bool "denser than ibmqx5" true
    (Device.coupling_complexity d > Device.coupling_complexity Device.Ibm.ibmqx5)

let test_new_targets_compile () =
  (* The Section 3 commercial machine and the future-work ion trap both
     work as compile targets. *)
  let cascade =
    Circuit.make ~n:4
      [
        Gate.Toffoli { c1 = 0; c2 = 1; target = 2 };
        Gate.Cnot { control = 2; target = 3 };
      ]
  in
  List.iter
    (fun device ->
      let r =
        Compiler.compile (Compiler.default_options ~device)
          (Compiler.Quantum cascade)
      in
      check_bool
        (Device.name device ^ " verified")
        true
        (Compiler.verified r.Compiler.verification))
    [ Device.Ibm.tokyo20; Device.ion_trap ~n_qubits:5 ]

let test_ion_trap () =
  let d = Device.ion_trap ~n_qubits:5 in
  check_bool "complexity 1" true
    (abs_float (Device.coupling_complexity d -. 1.0) < 1e-12);
  check_bool "all-to-all" true (Device.allows_cnot d ~control:4 ~target:0);
  check_bool "not the simulator pseudo-device" true
    (not (Device.is_simulator d));
  (* Routing on an ion trap never inserts SWAPs. *)
  let c = Circuit.make ~n:5 [ Gate.Cnot { control = 0; target = 4 } ] in
  check_int "no rerouting" 1
    (Circuit.gate_count (Route.route_circuit d c));
  match Device.ion_trap ~n_qubits:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted 1-qubit ion trap"

let test_registry () =
  check_int "registry size" 7 (List.length (Device.registry ()));
  check_bool "find ibmqx5" true (Device.name (Device.find "ibmqx5") = "ibmqx5");
  (match Device.find "nonexistent" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "found nonexistent device")

let test_big96_structure () =
  let d = Device.Ibm.big96 in
  (* 6 rows x 15 horizontal + 5 gaps x 8 vertical = 90 + 40 couplings. *)
  check_int "coupling count" 130 (List.length (Device.couplings d));
  check_bool "lower complexity than ibmqx5" true
    (Device.coupling_complexity d < Device.coupling_complexity Device.Ibm.ibmqx5);
  (* The Table 7 benchmark qubits are all present and routable. *)
  check_bool "q85 exists" true (Device.neighbors d 85 <> [])

let prop_complexity_bounds =
  QCheck2.Test.make ~name:"complexity in (0,1] for connected maps" ~count:50
    QCheck2.Gen.(int_range 2 10)
    (fun n ->
      (* Chain device: always connected. *)
      let pairs = List.init (n - 1) (fun i -> (i, i + 1)) in
      let d = Device.make ~name:"chain" ~n_qubits:n pairs in
      let c = Device.coupling_complexity d in
      c > 0.0 && c <= 1.0 && Device.is_connected d)

let () =
  Alcotest.run "device"
    [
      ( "table2",
        [
          Alcotest.test_case "coupling complexities" `Quick
            test_table2_complexities;
          Alcotest.test_case "device sizes" `Quick test_device_sizes;
        ] );
      ( "maps",
        [
          Alcotest.test_case "directed coupling" `Quick test_directed_coupling;
          Alcotest.test_case "fig5 adjacency" `Quick test_fig5_adjacency;
          Alcotest.test_case "connectivity" `Quick test_connectivity;
          Alcotest.test_case "simulator" `Quick test_simulator;
          Alcotest.test_case "big96" `Quick test_big96_structure;
          Alcotest.test_case "tokyo20" `Quick test_tokyo20;
          Alcotest.test_case "ion trap" `Quick test_ion_trap;
          Alcotest.test_case "new targets compile" `Quick
            test_new_targets_compile;
        ] );
      ( "parsing",
        [
          Alcotest.test_case "dict round trip" `Quick test_dict_roundtrip;
          Alcotest.test_case "dict errors" `Quick test_dict_errors;
          Alcotest.test_case "make errors" `Quick test_make_errors;
          Alcotest.test_case "registry" `Quick test_registry;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_complexity_bounds ]);
    ]
