let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let circ gates = Circuit.make ~n:4 gates

let test_adjacent_cancellation () =
  let c = circ [ Gate.H 0; Gate.H 0; Gate.X 1; Gate.X 1; Gate.T 2; Gate.Tdg 2 ] in
  check_int "all cancelled" 0 (Circuit.gate_count (Optimize.cancel_pass c))

let test_cancellation_through_commuting () =
  (* The T on q0 commutes through the CNOT control, so T...Tdg cancels
     even with the CNOT in between. *)
  let c =
    circ [ Gate.T 0; Gate.Cnot { control = 0; target = 1 }; Gate.Tdg 0 ]
  in
  let optimized = Optimize.cancel_pass c in
  check_int "only CNOT left" 1 (Circuit.gate_count optimized);
  check_bool "equivalent" true (Sim.equivalent ~up_to_phase:false c optimized)

let test_no_unsound_cancellation () =
  (* H on the CNOT's control does not commute: H...H must NOT cancel. *)
  let c =
    circ [ Gate.H 0; Gate.Cnot { control = 0; target = 1 }; Gate.H 0 ]
  in
  check_int "nothing cancelled" 3 (Circuit.gate_count (Optimize.cancel_pass c))

let test_fusion_rules () =
  let cases =
    [
      ([ Gate.T 0; Gate.T 0 ], [ Gate.S 0 ]);
      ([ Gate.S 0; Gate.S 0 ], [ Gate.Z 0 ]);
      ([ Gate.Tdg 0; Gate.Tdg 0 ], [ Gate.Sdg 0 ]);
      ([ Gate.S 0; Gate.Z 0 ], [ Gate.Sdg 0 ]);
      ([ Gate.Z 0; Gate.Sdg 0 ], [ Gate.S 0 ]);
      ([ Gate.T 0; Gate.Sdg 0 ], [ Gate.Tdg 0 ]);
      ([ Gate.Tdg 0; Gate.S 0 ], [ Gate.T 0 ]);
    ]
  in
  List.iter
    (fun (input, expected) ->
      let out = Optimize.cancel_pass (circ input) in
      check_bool
        (Printf.sprintf "%s fuses"
           (String.concat ";" (List.map Gate.to_string input)))
        true
        (Circuit.gates out = expected);
      check_bool "fusion exact" true
        (Sim.equivalent ~up_to_phase:false (circ input) out))
    cases

let test_toffoli_cancellation () =
  let c =
    circ
      [
        Gate.Toffoli { c1 = 0; c2 = 1; target = 2 };
        Gate.Toffoli { c1 = 1; c2 = 0; target = 2 };
      ]
  in
  check_int "commuted-roles Toffoli pair cancels" 0
    (Circuit.gate_count (Optimize.cancel_pass c))

let test_fig6_collapse () =
  let fig6 =
    circ
      [
        Gate.H 0;
        Gate.H 1;
        Gate.Cnot { control = 1; target = 0 };
        Gate.H 0;
        Gate.H 1;
      ]
  in
  let out = Optimize.rewrite_pass fig6 in
  check_bool "collapsed to one CNOT" true
    (Circuit.gates out = [ Gate.Cnot { control = 0; target = 1 } ]);
  check_bool "exact" true (Sim.equivalent ~up_to_phase:false fig6 out)

let test_fig6_respects_device () =
  (* On ibmqx4, 0 -> 1 is NOT allowed (only 1 -> 0 and 2 -> 0/1 are), so
     the pattern around CNOT(1,0) must not collapse into CNOT(0,1). *)
  let fig6 =
    Circuit.make ~n:5
      [
        Gate.H 0;
        Gate.H 1;
        Gate.Cnot { control = 1; target = 0 };
        Gate.H 0;
        Gate.H 1;
      ]
  in
  let out = Optimize.rewrite_pass ~device:Device.Ibm.ibmqx4 fig6 in
  check_int "kept 5 gates" 5 (Circuit.gate_count out);
  let out' = Optimize.rewrite_pass ~device:Device.Ibm.ibmqx2 fig6 in
  check_int "collapsed on ibmqx2 (0->1 allowed)" 1 (Circuit.gate_count out')

let test_h_conjugation () =
  let hxh = circ [ Gate.H 2; Gate.X 2; Gate.H 2 ] in
  check_bool "HXH = Z" true
    (Circuit.gates (Optimize.rewrite_pass hxh) = [ Gate.Z 2 ]);
  let hzh = circ [ Gate.H 2; Gate.Z 2; Gate.H 2 ] in
  check_bool "HZH = X" true
    (Circuit.gates (Optimize.rewrite_pass hzh) = [ Gate.X 2 ])

let test_identity_window () =
  (* CNOT(0,1) CNOT(1,0) CNOT(0,1) CNOT(1,0) CNOT(0,1) CNOT(1,0) is the
     identity (two SWAPs): a 6-gate window no pairwise rule catches. *)
  let cnot a b = Gate.Cnot { control = a; target = b } in
  let c =
    circ [ cnot 0 1; cnot 1 0; cnot 0 1; cnot 1 0; cnot 0 1; cnot 1 0 ]
  in
  check_int "window removed" 0
    (Circuit.gate_count (Optimize.remove_identity_windows c))

let test_optimize_fixed_point () =
  (* A cascade needing multiple passes: inner pair cancels, exposing the
     outer pair. *)
  let c =
    circ
      [
        Gate.H 0;
        Gate.Cnot { control = 0; target = 1 };
        Gate.X 2;
        Gate.X 2;
        Gate.Cnot { control = 0; target = 1 };
        Gate.H 0;
      ]
  in
  check_int "everything collapses" 0 (Circuit.gate_count (Optimize.optimize c))

let test_optimize_keeps_meaning () =
  let c =
    circ
      [
        Gate.H 0;
        Gate.T 0;
        Gate.T 0;
        Gate.Cnot { control = 0; target = 3 };
        Gate.Sdg 0;
        Gate.H 0;
      ]
  in
  let out = Optimize.optimize c in
  check_bool "cheaper" true (Cost.evaluate Cost.eqn2 out < Cost.evaluate Cost.eqn2 c);
  check_bool "same unitary" true (Sim.equivalent ~up_to_phase:false c out)

let test_commutes_rules () =
  let cnot a b = Gate.Cnot { control = a; target = b } in
  check_bool "disjoint" true (Optimize.commutes (Gate.H 0) (Gate.X 3));
  check_bool "diag pair" true (Optimize.commutes (Gate.T 0) (Gate.Cz (0, 1)));
  check_bool "T on control" true (Optimize.commutes (Gate.T 0) (cnot 0 1));
  check_bool "T on target" false (Optimize.commutes (Gate.T 1) (cnot 0 1));
  check_bool "X on target" true (Optimize.commutes (Gate.X 1) (cnot 0 1));
  check_bool "X on control" false (Optimize.commutes (Gate.X 0) (cnot 0 1));
  check_bool "shared control" true (Optimize.commutes (cnot 0 1) (cnot 0 2));
  check_bool "shared target" true (Optimize.commutes (cnot 0 2) (cnot 1 2));
  check_bool "control-target clash" false (Optimize.commutes (cnot 0 1) (cnot 1 2));
  check_bool "H on shared qubit" false (Optimize.commutes (Gate.H 0) (cnot 0 1))

(* Gaps the old commutation table missed: X/Rx (and Y/Ry) on a shared
   wire are both functions of the same Pauli, and an Rx on a CNOT
   target commutes just like X does.  Each pin here failed before the
   table was extended. *)
let test_commutes_rotation_fixes () =
  let cnot a b = Gate.Cnot { control = a; target = b } in
  check_bool "Rx through target" true (Optimize.commutes (Gate.Rx (0.4, 1)) (cnot 0 1));
  check_bool "Rx on control" false (Optimize.commutes (Gate.Rx (0.4, 0)) (cnot 0 1));
  check_bool "X with Rx shared wire" true (Optimize.commutes (Gate.X 0) (Gate.Rx (0.4, 0)));
  check_bool "Y with Ry shared wire" true (Optimize.commutes (Gate.Y 2) (Gate.Ry (0.4, 2)));
  check_bool "X with Ry shared wire" false (Optimize.commutes (Gate.X 0) (Gate.Ry (0.4, 0)));
  check_bool "Y with Rx shared wire" false (Optimize.commutes (Gate.Y 0) (Gate.Rx (0.4, 0)));
  (* The cancellations the new rules unlock. *)
  let through_target = circ [ Gate.Rx (0.4, 1); cnot 0 1; Gate.Rx (-0.4, 1) ] in
  let out = Optimize.cancel_pass through_target in
  check_int "Rx pair cancels through CNOT target" 1 (Circuit.gate_count out);
  check_bool "Rx cancellation exact" true
    (Sim.equivalent ~up_to_phase:false through_target out);
  let through_y = circ [ Gate.Ry (0.3, 0); Gate.Y 0; Gate.Ry (-0.3, 0) ] in
  let out = Optimize.cancel_pass through_y in
  check_int "Ry pair cancels through Y" 1 (Circuit.gate_count out);
  check_bool "Ry cancellation exact" true
    (Sim.equivalent ~up_to_phase:false through_y out);
  (* Rx on the control must NOT slide: H-basis check that the unsound
     direction stays blocked. *)
  let on_control = circ [ Gate.Rx (0.4, 0); cnot 0 1; Gate.Rx (-0.4, 0) ] in
  check_int "Rx on control stays" 3
    (Circuit.gate_count (Optimize.cancel_pass on_control))

let test_phase_chain_collapses () =
  (* T.T.T.T = Z through repeated pairwise fusion (T.T = S, S.S = Z);
     needs the fixed-point loop, not a single pass. *)
  let c = circ [ Gate.T 0; Gate.T 0; Gate.T 0; Gate.T 0 ] in
  check_bool "TTTT = Z" true (Circuit.gates (Optimize.optimize c) = [ Gate.Z 0 ]);
  (* Eight T gates cancel entirely. *)
  let c8 = circ (List.init 8 (fun _ -> Gate.T 0)) in
  check_int "T^8 = I" 0 (Circuit.gate_count (Optimize.optimize c8))

let test_lookback_bound () =
  (* Two H gates on q0 separated by more commuting gates than the
     lookback window: the bounded pass must not merge them, the default
     one does. *)
  let spacers = List.init 6 (fun i -> Gate.T ((i mod 3) + 1)) in
  let c = circ ((Gate.H 0 :: spacers) @ [ Gate.H 0 ]) in
  (* Wide window: the H pair cancels and each T pair fuses to an S,
     leaving 3 gates.  Narrow window: nothing is close enough. *)
  check_int "wide window merges" 3
    (Circuit.gate_count (Optimize.cancel_pass ~lookback:50 c));
  check_int "narrow window keeps all" 8
    (Circuit.gate_count (Optimize.cancel_pass ~lookback:2 c))

let prop_device_optimize_stays_legal =
  (* Optimizing a mapped circuit must never introduce an illegal CNOT:
     the guarantee that lets the compiler optimize after routing. *)
  QCheck2.Test.make ~name:"device-aware optimization preserves legality"
    ~count:25
    (Testutil.gen_native_circuit ~max_gates:8 5)
    (fun c ->
      let d = Device.Ibm.ibmqx4 in
      let routed = Route.route_circuit d c in
      Route.legal_on d (Optimize.optimize ~device:d routed))

let prop_commutes_sound =
  (* Whenever [commutes] says yes, the matrices really commute. *)
  QCheck2.Test.make ~name:"commutes is sound" ~count:300
    QCheck2.Gen.(pair (Testutil.gen_gate 4) (Testutil.gen_gate 4))
    (fun (g, h) ->
      (not (Optimize.commutes g h))
      ||
      let a = Gate.embedded_matrix ~n:4 g and b = Gate.embedded_matrix ~n:4 h in
      Mathkit.Matrix.approx_equal ~eps:1e-9 (Mathkit.Matrix.mul a b)
        (Mathkit.Matrix.mul b a))

let prop_merge_sound =
  (* Whenever merge_gates fires, the replacement has the same matrix. *)
  QCheck2.Test.make ~name:"merge_gates is sound" ~count:300
    QCheck2.Gen.(pair (Testutil.gen_gate 4) (Testutil.gen_gate 4))
    (fun (g, h) ->
      match Optimize.merge_gates g h with
      | None -> true
      | Some replacement ->
        Sim.equivalent ~up_to_phase:false
          (Circuit.make ~n:4 [ g; h ])
          (Circuit.make ~n:4 replacement))

let prop_optimize_preserves_unitary =
  QCheck2.Test.make ~name:"optimize preserves unitary exactly" ~count:40
    (Testutil.gen_circuit ~max_gates:20 4)
    (fun c -> Sim.equivalent ~up_to_phase:false c (Optimize.optimize c))

let prop_optimize_never_worse =
  QCheck2.Test.make ~name:"optimize never increases cost" ~count:60
    (Testutil.gen_circuit ~max_gates:25 4)
    (fun c ->
      Cost.evaluate Cost.eqn2 (Optimize.optimize c) <= Cost.evaluate Cost.eqn2 c)

let prop_cancel_pass_preserves =
  QCheck2.Test.make ~name:"cancel pass preserves unitary" ~count:60
    (Testutil.gen_circuit ~max_gates:25 4)
    (fun c -> Sim.equivalent ~up_to_phase:false c (Optimize.cancel_pass c))

let prop_rewrite_pass_preserves =
  QCheck2.Test.make ~name:"rewrite pass preserves unitary" ~count:60
    (Testutil.gen_circuit ~max_gates:25 4)
    (fun c -> Sim.equivalent ~up_to_phase:false c (Optimize.rewrite_pass c))

let prop_identity_windows_preserve =
  QCheck2.Test.make ~name:"identity-window removal preserves unitary" ~count:40
    (Testutil.gen_circuit ~max_gates:25 4)
    (fun c ->
      Sim.equivalent ~up_to_phase:false c (Optimize.remove_identity_windows c))

let () =
  Alcotest.run "optimize"
    [
      ( "cancellation",
        [
          Alcotest.test_case "adjacent pairs" `Quick test_adjacent_cancellation;
          Alcotest.test_case "through commuting gates" `Quick
            test_cancellation_through_commuting;
          Alcotest.test_case "no unsound cancellation" `Quick
            test_no_unsound_cancellation;
          Alcotest.test_case "fusion rules" `Quick test_fusion_rules;
          Alcotest.test_case "toffoli pair" `Quick test_toffoli_cancellation;
        ] );
      ( "rewrites",
        [
          Alcotest.test_case "fig6 collapse" `Quick test_fig6_collapse;
          Alcotest.test_case "fig6 device guard" `Quick test_fig6_respects_device;
          Alcotest.test_case "H conjugation" `Quick test_h_conjugation;
          Alcotest.test_case "identity window" `Quick test_identity_window;
        ] );
      ( "fixed point",
        [
          Alcotest.test_case "cascade" `Quick test_optimize_fixed_point;
          Alcotest.test_case "meaning preserved" `Quick test_optimize_keeps_meaning;
          Alcotest.test_case "commutation rules" `Quick test_commutes_rules;
          Alcotest.test_case "rotation commutation fixes" `Quick
            test_commutes_rotation_fixes;
          Alcotest.test_case "phase chain" `Quick test_phase_chain_collapses;
          Alcotest.test_case "lookback bound" `Quick test_lookback_bound;
          QCheck_alcotest.to_alcotest prop_device_optimize_stays_legal;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_commutes_sound;
          QCheck_alcotest.to_alcotest prop_merge_sound;
          QCheck_alcotest.to_alcotest prop_optimize_preserves_unitary;
          QCheck_alcotest.to_alcotest prop_optimize_never_worse;
          QCheck_alcotest.to_alcotest prop_cancel_pass_preserves;
          QCheck_alcotest.to_alcotest prop_rewrite_pass_preserves;
          QCheck_alcotest.to_alcotest prop_identity_windows_preserve;
        ] );
    ]
