(* The serve daemon: qsynth-serve/v1 dispatch, the content-addressed
   report cache (hit/miss/LRU-eviction behavior), error-code mapping,
   the batch verb, and the loopback socket layer with concurrent
   clients.  Protocol tests drive [Serve.handle_line] in-process — the
   socket layer only moves lines, so this covers the daemon's whole
   behavior without binding sockets; the one socket test at the end
   pins the rest. *)

module J = Trace.Json

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let sample_qasm =
  "OPENQASM 2.0;\n\
   include \"qelib1.inc\";\n\
   qreg q[3];\n\
   h q[0];\n\
   cx q[0],q[1];\n\
   cx q[1],q[2];\n\
   t q[2];\n"

let parse_response line =
  match J.of_string line with
  | Ok j -> j
  | Error e -> Alcotest.failf "unparseable response %S: %s" line e

let rpc t fields = parse_response (Serve.handle_line t (J.to_string (J.Obj fields)))

let field name j =
  match J.member name j with
  | Some v -> v
  | None -> Alcotest.failf "response is missing %S: %s" name (J.to_string j)

let int_field name j =
  match field name j with
  | J.Int i -> i
  | v -> Alcotest.failf "%S is not an int: %s" name (J.to_string v)

let bool_field name j =
  match field name j with
  | J.Bool b -> b
  | v -> Alcotest.failf "%S is not a bool: %s" name (J.to_string v)

let compile_req ?(device = "ibmqx4") ?options source =
  [
    ("op", J.String "compile");
    ("source", J.String source);
    ("device", J.String device);
  ]
  @ match options with None -> [] | Some o -> [ ("options", J.Obj o) ]

(* The options [Serve] applies to a bare request, rebuilt through the
   public compiler API: CLI defaults plus the daemon's 60s deadline
   ceiling. *)
let mirrored_options device =
  {
    (Compiler.default_options ~device) with
    Compiler.verification =
      Compiler.Fallback { node_budget = Some 8_000_000; max_sim_qubits = 10 };
    Compiler.budgets =
      { Compiler.no_budgets with Compiler.deadline_seconds = Some 60.0 };
  }

let one_shot_report_json ?(device_name = "ibmqx4") source =
  let device = Device.find device_name in
  let options = mirrored_options device in
  match Compiler.parse_source_checked ~format:"qasm" source with
  | Error d -> Alcotest.failf "one-shot parse failed: %s" (Diagnostic.to_string d)
  | Ok input -> (
    match Compiler.compile_checked options input with
    | Error ds ->
      Alcotest.failf "one-shot compile failed: %s"
        (String.concat "; " (List.map Diagnostic.to_string ds))
    | Ok report -> (
      match Compiler.report_to_json ~cost:options.Compiler.cost report with
      | J.Obj fields ->
        J.Obj
          (List.map
             (fun (k, v) ->
               match k with
               | "elapsed_seconds" | "verification_seconds" -> (k, J.Null)
               | _ -> (k, v))
             fields)
      | other -> other))

(* --- protocol basics --- *)

let test_ping_and_envelope () =
  let t = Serve.create () in
  let r = rpc t [ ("op", J.String "ping"); ("id", J.Int 7) ] in
  check_string "protocol" "qsynth-serve/v1"
    (match field "protocol" r with J.String s -> s | _ -> "?");
  check_int "id echoed" 7 (int_field "id" r);
  check_bool "ok" true (bool_field "ok" r);
  check_int "code" 0 (int_field "code" r);
  check_bool "pong" true (bool_field "pong" r);
  check_bool "seconds present" true
    (match field "seconds" r with J.Float _ | J.Int _ -> true | _ -> false)

let test_compile_matches_one_shot () =
  let t = Serve.create () in
  let r = rpc t (compile_req sample_qasm) in
  check_int "code" 0 (int_field "code" r);
  check_bool "not cached" false (bool_field "cached" r);
  check_string "status" "ok"
    (match field "status" r with J.String s -> s | _ -> "?");
  (* The served report is byte-identical to a one-shot compile of the
     same request: timings are scrubbed to null on both sides, and
     everything else is deterministic. *)
  check_string "byte-identical to one-shot"
    (J.to_string (one_shot_report_json sample_qasm))
    (J.to_string (field "report" r));
  (* Scrubbing really happened. *)
  check_bool "elapsed scrubbed" true
    (J.member "elapsed_seconds" (field "report" r) = Some J.Null)

(* --- the cache --- *)

let test_cache_hit_and_key_sensitivity () =
  let t = Serve.create () in
  let first = rpc t (compile_req sample_qasm) in
  check_bool "first is a miss" false (bool_field "cached" first);
  let second = rpc t (compile_req sample_qasm) in
  check_bool "identical request hits" true (bool_field "cached" second);
  check_string "hit is byte-identical to the miss"
    (J.to_string (field "report" first))
    (J.to_string (field "report" second));
  (* One changed character of source misses. *)
  let tweaked = sample_qasm ^ "t q[0];\n" in
  check_bool "changed source misses" false
    (bool_field "cached" (rpc t (compile_req tweaked)));
  (* Same source, different device misses. *)
  check_bool "changed device misses" false
    (bool_field "cached" (rpc t (compile_req ~device:"ibmqx2" sample_qasm)));
  (* Same source and device, one changed option misses. *)
  check_bool "changed option misses" false
    (bool_field "cached"
       (rpc t
          (compile_req
             ~options:[ ("verification", J.String "skip") ]
             sample_qasm)));
  let stats = field "stats" (rpc t [ ("op", J.String "stats") ]) in
  let cache = field "cache" stats in
  check_int "hits" 1 (int_field "hits" cache);
  check_int "misses" 4 (int_field "misses" cache);
  check_int "resident" 4 (int_field "size" cache)

let test_lru_eviction () =
  let t = Serve.create ~cache_capacity:2 () in
  let source_a = sample_qasm in
  let source_b = sample_qasm ^ "x q[0];\n" in
  let source_c = sample_qasm ^ "z q[0];\n" in
  let compile s = bool_field "cached" (rpc t (compile_req s)) in
  check_bool "A misses" false (compile source_a);
  check_bool "B misses" false (compile source_b);
  check_bool "A hits" true (compile source_a);
  (* Capacity 2: inserting C evicts the least-recently-used entry,
     which is B (A was just touched). *)
  check_bool "C misses" false (compile source_c);
  check_bool "B was evicted" false (compile source_b);
  check_bool "A was evicted by B's re-insert" false (compile source_a);
  let cache = field "cache" (field "stats" (rpc t [ ("op", J.String "stats") ])) in
  (* Three capacity-exceeding inserts: C evicted B, B's re-insert
     evicted A, A's re-insert evicted C. *)
  check_int "evictions" 3 (int_field "evictions" cache);
  check_int "bounded" 2 (int_field "size" cache)

let test_zero_capacity_disables_caching () =
  let t = Serve.create ~cache_capacity:0 () in
  ignore (rpc t (compile_req sample_qasm));
  let second = rpc t (compile_req sample_qasm) in
  check_bool "nothing cached" false (bool_field "cached" second)

(* --- error-code mapping --- *)

let diagnostic_kind r =
  match field "diagnostics" r with
  | J.List (d :: _) -> (
    match J.member "kind" d with Some (J.String k) -> k | _ -> "?")
  | _ -> "?"

let test_malformed_frames_are_misuse () =
  let t = Serve.create () in
  let misuse =
    [
      "definitely not json";
      "{\"op\":";
      "[1,2,3]";
      "{\"op\":42}";
      J.to_string (J.Obj [ ("op", J.String "transmogrify") ]);
      J.to_string
        (J.Obj (compile_req ~device:"nosuchdevice" sample_qasm));
      J.to_string
        (J.Obj
           (compile_req
              ~options:[ ("not_an_option", J.Bool true) ]
              sample_qasm));
      {|{"op":"compile","source":17,"device":"ibmqx4"}|};
      {|{"op":"batch","requests":{}}|};
    ]
  in
  List.iter
    (fun frame ->
      let r = parse_response (Serve.handle_line t frame) in
      check_int (Printf.sprintf "misuse code for %s" frame) 124
        (int_field "code" r);
      check_bool "not ok" false (bool_field "ok" r);
      check_string
        (Printf.sprintf "protocol kind for %s" frame)
        "protocol" (diagnostic_kind r))
    misuse

let test_missing_fields_are_reported_failures () =
  let t = Serve.create () in
  List.iter
    (fun fields ->
      let r = rpc t fields in
      check_int "reported-failure code" 123 (int_field "code" r))
    [
      [ ("source", J.String sample_qasm) ];
      (* no op *)
      [ ("op", J.String "compile"); ("source", J.String sample_qasm) ];
      [ ("op", J.String "compile"); ("device", J.String "ibmqx4") ];
      [ ("op", J.String "batch") ];
    ]

let test_parse_errors_are_reported_failures () =
  let t = Serve.create () in
  let r = rpc t (compile_req "OPENQASM 2.0;\nqreg q[2];\nbogus q[0];\n") in
  check_int "parse failure code" 123 (int_field "code" r);
  check_string "parse kind" "parse" (diagnostic_kind r)

(* --- batch --- *)

let test_batch_aggregates () =
  let t = Serve.create () in
  let entry fields = J.Obj fields in
  let r =
    rpc t
      [
        ("op", J.String "batch");
        ( "requests",
          J.List
            [
              entry (List.tl (compile_req sample_qasm));
              entry [ ("device", J.String "ibmqx4") ];
              (* missing source: 123 *)
              entry (List.tl (compile_req ~device:"nosuch" sample_qasm));
              (* unknown device: 124 *)
            ] );
      ]
  in
  check_int "total" 3 (int_field "total" r);
  check_int "failed" 2 (int_field "failed" r);
  (* Aggregate severity is the worst lane that occurred. *)
  check_int "envelope code" 124 (int_field "code" r);
  (match field "results" r with
  | J.List [ a; b; c ] ->
    check_int "first entry ok" 0 (int_field "code" a);
    check_int "missing source" 123 (int_field "code" b);
    check_int "unknown device" 124 (int_field "code" c)
  | v -> Alcotest.failf "results: %s" (J.to_string v));
  (* A batch miss populates the cache for later singles. *)
  check_bool "single after batch hits" true
    (bool_field "cached" (rpc t (compile_req sample_qasm)))

(* --- the socket layer --- *)

let temp_socket_path () =
  let path = Filename.temp_file "qsynth-serve-test" ".sock" in
  Sys.remove path;
  path

let test_concurrent_clients_loopback () =
  (* Two clients over a real Unix socket, racing the same compile and
     one distinct compile each.  Every response for the shared request
     must be byte-identical to the one-shot compile — whichever client
     took the cache miss. *)
  let path = temp_socket_path () in
  let address = Serve.Unix_socket path in
  let daemon = Serve.create () in
  let server = Thread.create (fun () -> Serve.serve daemon address) () in
  let rec connect retries =
    match Serve.Client.connect address with
    | conn -> conn
    | exception _ when retries > 0 ->
      Thread.delay 0.02;
      connect (retries - 1)
    | exception e -> raise e
  in
  Fun.protect
    ~finally:(fun () ->
      (try
         let conn = connect 5 in
         ignore (Serve.Client.request conn {|{"op":"shutdown"}|});
         Serve.Client.close conn
       with _ -> ());
      Thread.join server;
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let own_source i = sample_qasm ^ Printf.sprintf "x q[%d];\n" i in
      let results = [| None; None |] in
      let client i () =
        let conn = connect 100 in
        Fun.protect
          ~finally:(fun () -> Serve.Client.close conn)
          (fun () ->
            let ask req =
              parse_response
                (Serve.Client.request conn (J.to_string (J.Obj req)))
            in
            let shared = ask (compile_req sample_qasm) in
            let own = ask (compile_req (own_source i)) in
            results.(i) <- Some (shared, own))
      in
      let t0 = Thread.create (client 0) () in
      let t1 = Thread.create (client 1) () in
      Thread.join t0;
      Thread.join t1;
      let expected = J.to_string (one_shot_report_json sample_qasm) in
      Array.iteri
        (fun i result ->
          match result with
          | None -> Alcotest.failf "client %d produced no result" i
          | Some (shared, own) ->
            check_int "shared ok" 0 (int_field "code" shared);
            check_string
              (Printf.sprintf "client %d shared report is byte-identical" i)
              expected
              (J.to_string (field "report" shared));
            check_int "own ok" 0 (int_field "code" own))
        results;
      (* Exactly one of the two racing shared compiles was a miss. *)
      let cached_flags =
        Array.to_list results
        |> List.map (function
             | Some (shared, _) -> bool_field "cached" shared
             | None -> false)
      in
      check_int "one hit, one miss on the shared request" 1
        (List.length (List.filter Fun.id cached_flags)))

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "ping and envelope" `Quick test_ping_and_envelope;
          Alcotest.test_case "compile matches one-shot" `Quick
            test_compile_matches_one_shot;
          Alcotest.test_case "malformed frames are misuse" `Quick
            test_malformed_frames_are_misuse;
          Alcotest.test_case "missing fields are reported failures" `Quick
            test_missing_fields_are_reported_failures;
          Alcotest.test_case "parse errors are reported failures" `Quick
            test_parse_errors_are_reported_failures;
          Alcotest.test_case "batch aggregates" `Quick test_batch_aggregates;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit and key sensitivity" `Quick
            test_cache_hit_and_key_sensitivity;
          Alcotest.test_case "LRU eviction" `Quick test_lru_eviction;
          Alcotest.test_case "zero capacity disables" `Quick
            test_zero_capacity_disables_caching;
        ] );
      ( "sockets",
        [
          Alcotest.test_case "concurrent clients over loopback" `Quick
            test_concurrent_clients_loopback;
        ] );
    ]
