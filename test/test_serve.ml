(* The serve daemon: qsynth-serve/v1 dispatch, the content-addressed
   report cache (hit/miss/LRU-eviction behavior), error-code mapping,
   the batch verb, and the loopback socket layer with concurrent
   clients.  Protocol tests drive [Serve.handle_line] in-process — the
   socket layer only moves lines, so this covers the daemon's whole
   behavior without binding sockets; the one socket test at the end
   pins the rest. *)

module J = Trace.Json

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let sample_qasm =
  "OPENQASM 2.0;\n\
   include \"qelib1.inc\";\n\
   qreg q[3];\n\
   h q[0];\n\
   cx q[0],q[1];\n\
   cx q[1],q[2];\n\
   t q[2];\n"

let parse_response line =
  match J.of_string line with
  | Ok j -> j
  | Error e -> Alcotest.failf "unparseable response %S: %s" line e

let rpc t fields = parse_response (Serve.handle_line t (J.to_string (J.Obj fields)))

let field name j =
  match J.member name j with
  | Some v -> v
  | None -> Alcotest.failf "response is missing %S: %s" name (J.to_string j)

let int_field name j =
  match field name j with
  | J.Int i -> i
  | v -> Alcotest.failf "%S is not an int: %s" name (J.to_string v)

let bool_field name j =
  match field name j with
  | J.Bool b -> b
  | v -> Alcotest.failf "%S is not a bool: %s" name (J.to_string v)

let compile_req ?(device = "ibmqx4") ?options source =
  [
    ("op", J.String "compile");
    ("source", J.String source);
    ("device", J.String device);
  ]
  @ match options with None -> [] | Some o -> [ ("options", J.Obj o) ]

(* The options [Serve] applies to a bare request, rebuilt through the
   public compiler API: CLI defaults plus the daemon's 60s deadline
   ceiling. *)
let mirrored_options device =
  {
    (Compiler.default_options ~device) with
    Compiler.verification =
      Compiler.Fallback { node_budget = Some 8_000_000; max_sim_qubits = 10 };
    Compiler.budgets =
      { Compiler.no_budgets with Compiler.deadline_seconds = Some 60.0 };
  }

let one_shot_report_json ?(device_name = "ibmqx4") source =
  let device = Device.find device_name in
  let options = mirrored_options device in
  match Compiler.parse_source_checked ~format:"qasm" source with
  | Error d -> Alcotest.failf "one-shot parse failed: %s" (Diagnostic.to_string d)
  | Ok input -> (
    match Compiler.compile_checked options input with
    | Error ds ->
      Alcotest.failf "one-shot compile failed: %s"
        (String.concat "; " (List.map Diagnostic.to_string ds))
    | Ok report -> (
      match Compiler.report_to_json ~cost:options.Compiler.cost report with
      | J.Obj fields ->
        J.Obj
          (List.map
             (fun (k, v) ->
               match k with
               | "elapsed_seconds" | "verification_seconds" -> (k, J.Null)
               | _ -> (k, v))
             fields)
      | other -> other))

(* --- protocol basics --- *)

let test_ping_and_envelope () =
  let t = Serve.create () in
  let r = rpc t [ ("op", J.String "ping"); ("id", J.Int 7) ] in
  check_string "protocol" "qsynth-serve/v1"
    (match field "protocol" r with J.String s -> s | _ -> "?");
  check_int "id echoed" 7 (int_field "id" r);
  check_bool "ok" true (bool_field "ok" r);
  check_int "code" 0 (int_field "code" r);
  check_bool "pong" true (bool_field "pong" r);
  check_bool "seconds present" true
    (match field "seconds" r with J.Float _ | J.Int _ -> true | _ -> false)

let test_compile_matches_one_shot () =
  let t = Serve.create () in
  let r = rpc t (compile_req sample_qasm) in
  check_int "code" 0 (int_field "code" r);
  check_bool "not cached" false (bool_field "cached" r);
  check_string "status" "ok"
    (match field "status" r with J.String s -> s | _ -> "?");
  (* The served report is byte-identical to a one-shot compile of the
     same request: timings are scrubbed to null on both sides, and
     everything else is deterministic. *)
  check_string "byte-identical to one-shot"
    (J.to_string (one_shot_report_json sample_qasm))
    (J.to_string (field "report" r));
  (* Scrubbing really happened. *)
  check_bool "elapsed scrubbed" true
    (J.member "elapsed_seconds" (field "report" r) = Some J.Null)

(* --- the cache --- *)

let test_cache_hit_and_key_sensitivity () =
  let t = Serve.create () in
  let first = rpc t (compile_req sample_qasm) in
  check_bool "first is a miss" false (bool_field "cached" first);
  let second = rpc t (compile_req sample_qasm) in
  check_bool "identical request hits" true (bool_field "cached" second);
  check_string "hit is byte-identical to the miss"
    (J.to_string (field "report" first))
    (J.to_string (field "report" second));
  (* One changed character of source misses. *)
  let tweaked = sample_qasm ^ "t q[0];\n" in
  check_bool "changed source misses" false
    (bool_field "cached" (rpc t (compile_req tweaked)));
  (* Same source, different device misses. *)
  check_bool "changed device misses" false
    (bool_field "cached" (rpc t (compile_req ~device:"ibmqx2" sample_qasm)));
  (* Same source and device, one changed option misses. *)
  check_bool "changed option misses" false
    (bool_field "cached"
       (rpc t
          (compile_req
             ~options:[ ("verification", J.String "skip") ]
             sample_qasm)));
  let stats = field "stats" (rpc t [ ("op", J.String "stats") ]) in
  let cache = field "cache" stats in
  check_int "hits" 1 (int_field "hits" cache);
  check_int "misses" 4 (int_field "misses" cache);
  check_int "resident" 4 (int_field "size" cache)

let test_lru_eviction () =
  let t = Serve.create ~cache_capacity:2 () in
  let source_a = sample_qasm in
  let source_b = sample_qasm ^ "x q[0];\n" in
  let source_c = sample_qasm ^ "z q[0];\n" in
  let compile s = bool_field "cached" (rpc t (compile_req s)) in
  check_bool "A misses" false (compile source_a);
  check_bool "B misses" false (compile source_b);
  check_bool "A hits" true (compile source_a);
  (* Capacity 2: inserting C evicts the least-recently-used entry,
     which is B (A was just touched). *)
  check_bool "C misses" false (compile source_c);
  check_bool "B was evicted" false (compile source_b);
  check_bool "A was evicted by B's re-insert" false (compile source_a);
  let cache = field "cache" (field "stats" (rpc t [ ("op", J.String "stats") ])) in
  (* Three capacity-exceeding inserts: C evicted B, B's re-insert
     evicted A, A's re-insert evicted C. *)
  check_int "evictions" 3 (int_field "evictions" cache);
  check_int "bounded" 2 (int_field "size" cache)

let test_zero_capacity_disables_caching () =
  let t = Serve.create ~cache_capacity:0 () in
  ignore (rpc t (compile_req sample_qasm));
  let second = rpc t (compile_req sample_qasm) in
  check_bool "nothing cached" false (bool_field "cached" second)

(* --- error-code mapping --- *)

let diagnostic_kind r =
  match field "diagnostics" r with
  | J.List (d :: _) -> (
    match J.member "kind" d with Some (J.String k) -> k | _ -> "?")
  | _ -> "?"

let test_malformed_frames_are_misuse () =
  let t = Serve.create () in
  let misuse =
    [
      "definitely not json";
      "{\"op\":";
      "[1,2,3]";
      "{\"op\":42}";
      J.to_string (J.Obj [ ("op", J.String "transmogrify") ]);
      J.to_string
        (J.Obj (compile_req ~device:"nosuchdevice" sample_qasm));
      J.to_string
        (J.Obj
           (compile_req
              ~options:[ ("not_an_option", J.Bool true) ]
              sample_qasm));
      {|{"op":"compile","source":17,"device":"ibmqx4"}|};
      {|{"op":"batch","requests":{}}|};
    ]
  in
  List.iter
    (fun frame ->
      let r = parse_response (Serve.handle_line t frame) in
      check_int (Printf.sprintf "misuse code for %s" frame) 124
        (int_field "code" r);
      check_bool "not ok" false (bool_field "ok" r);
      check_string
        (Printf.sprintf "protocol kind for %s" frame)
        "protocol" (diagnostic_kind r))
    misuse

let test_missing_fields_are_reported_failures () =
  let t = Serve.create () in
  List.iter
    (fun fields ->
      let r = rpc t fields in
      check_int "reported-failure code" 123 (int_field "code" r))
    [
      [ ("source", J.String sample_qasm) ];
      (* no op *)
      [ ("op", J.String "compile"); ("source", J.String sample_qasm) ];
      [ ("op", J.String "compile"); ("device", J.String "ibmqx4") ];
      [ ("op", J.String "batch") ];
    ]

let test_parse_errors_are_reported_failures () =
  let t = Serve.create () in
  let r = rpc t (compile_req "OPENQASM 2.0;\nqreg q[2];\nbogus q[0];\n") in
  check_int "parse failure code" 123 (int_field "code" r);
  check_string "parse kind" "parse" (diagnostic_kind r)

(* --- batch --- *)

let test_batch_aggregates () =
  let t = Serve.create () in
  let entry fields = J.Obj fields in
  let r =
    rpc t
      [
        ("op", J.String "batch");
        ( "requests",
          J.List
            [
              entry (List.tl (compile_req sample_qasm));
              entry [ ("device", J.String "ibmqx4") ];
              (* missing source: 123 *)
              entry (List.tl (compile_req ~device:"nosuch" sample_qasm));
              (* unknown device: 124 *)
            ] );
      ]
  in
  check_int "total" 3 (int_field "total" r);
  check_int "failed" 2 (int_field "failed" r);
  (* Aggregate severity is the worst lane that occurred. *)
  check_int "envelope code" 124 (int_field "code" r);
  (match field "results" r with
  | J.List [ a; b; c ] ->
    check_int "first entry ok" 0 (int_field "code" a);
    check_int "missing source" 123 (int_field "code" b);
    check_int "unknown device" 124 (int_field "code" c)
  | v -> Alcotest.failf "results: %s" (J.to_string v));
  (* A batch miss populates the cache for later singles. *)
  check_bool "single after batch hits" true
    (bool_field "cached" (rpc t (compile_req sample_qasm)))

(* --- parallelism: counter consistency and batch identity --- *)

let cache_counters t =
  let c = field "cache" (field "stats" (rpc t [ ("op", J.String "stats") ])) in
  (int_field "lookups" c, int_field "hits" c, int_field "misses" c)

let test_lookups_count_resolved_consultations () =
  let t = Serve.create () in
  ignore (rpc t (compile_req sample_qasm));
  ignore (rpc t (compile_req sample_qasm));
  ignore (rpc t (compile_req (sample_qasm ^ "x q[0];\n")));
  let lookups, hits, misses = cache_counters t in
  check_int "hits" 1 hits;
  check_int "misses" 2 misses;
  check_int "lookups = hits + misses" (hits + misses) lookups

let test_stats_snapshot_is_never_torn () =
  (* The stats verb once read counter fields without the state lock, so
     a reader racing a compile could catch a request after its hit/miss
     bump but before (or after) its lookup bump — a torn snapshot where
     hits + misses <> lookups.  Hammer the daemon with compiling
     threads while a reader asserts the invariant on every snapshot. *)
  let t = Serve.create () in
  let stop = Atomic.make false in
  let torn = Atomic.make 0 in
  let reader =
    Thread.create
      (fun () ->
        while not (Atomic.get stop) do
          let c = Serve.stats t in
          if c.Serve.hits + c.Serve.misses <> c.Serve.lookups then
            Atomic.incr torn;
          Thread.yield ()
        done)
      ()
  in
  let sources =
    List.init 6 (fun i ->
        sample_qasm ^ String.concat "" (List.init i (fun _ -> "x q[0];\n")))
  in
  let compilers =
    List.map
      (fun source ->
        Thread.create
          (fun () ->
            for _ = 1 to 3 do
              ignore (rpc t (compile_req source))
            done)
          ())
      sources
  in
  List.iter Thread.join compilers;
  Atomic.set stop true;
  Thread.join reader;
  check_int "no torn snapshot observed" 0 (Atomic.get torn);
  (* 6 distinct sources, each requested 3 times. *)
  let lookups, hits, misses = cache_counters t in
  check_int "misses" 6 misses;
  check_int "hits" 12 hits;
  check_int "lookups" (hits + misses) lookups

let test_parallel_batch_matches_sequential () =
  (* A daemon created with ~jobs:4 fans batch lanes across domains; the
     guarantee is byte-identical output AND identical cache counters to
     the sequential daemon — duplicates, per-lane failures and the
     cached flags included. *)
  let lanes =
    [
      List.tl (compile_req sample_qasm);
      List.tl (compile_req sample_qasm) (* duplicate: replays as a hit *);
      [ ("device", J.String "ibmqx4") ] (* missing source: 123 *);
      List.tl (compile_req ~device:"nosuch" sample_qasm) (* 124 *);
      List.tl (compile_req (sample_qasm ^ "x q[0];\n"));
      List.tl (compile_req "OPENQASM 2.0;\nqreg q[2];\nbogus q[0];\n");
      List.tl (compile_req sample_qasm) (* late duplicate: also a hit *);
    ]
  in
  let batch =
    [
      ("op", J.String "batch");
      ("requests", J.List (List.map (fun fields -> J.Obj fields) lanes));
    ]
  in
  let run jobs =
    let t = Serve.create ~jobs () in
    let r = rpc t batch in
    (J.to_string (field "results" r), int_field "code" r, cache_counters t)
  in
  let seq_results, seq_code, (sl, sh, sm) = run 1 in
  let par_results, par_code, (pl, ph, pm) = run 4 in
  check_string "results byte-identical" seq_results par_results;
  check_int "envelope code" seq_code par_code;
  check_int "lookups" sl pl;
  check_int "hits" sh ph;
  check_int "misses" sm pm;
  check_int "invariant" (ph + pm) pl

(* --- the socket layer --- *)

let temp_socket_path () =
  let path = Filename.temp_file "qsynth-serve-test" ".sock" in
  Sys.remove path;
  path

let test_concurrent_clients_loopback () =
  (* Two clients over a real Unix socket, racing the same compile and
     one distinct compile each.  Every response for the shared request
     must be byte-identical to the one-shot compile — whichever client
     took the cache miss. *)
  let path = temp_socket_path () in
  let address = Serve.Unix_socket path in
  let daemon = Serve.create () in
  let server = Thread.create (fun () -> Serve.serve daemon address) () in
  let rec connect retries =
    match Serve.Client.connect address with
    | conn -> conn
    | exception _ when retries > 0 ->
      Thread.delay 0.02;
      connect (retries - 1)
    | exception e -> raise e
  in
  Fun.protect
    ~finally:(fun () ->
      (try
         let conn = connect 5 in
         ignore (Serve.Client.request conn {|{"op":"shutdown"}|});
         Serve.Client.close conn
       with _ -> ());
      Thread.join server;
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let own_source i = sample_qasm ^ Printf.sprintf "x q[%d];\n" i in
      let results = [| None; None |] in
      let client i () =
        let conn = connect 100 in
        Fun.protect
          ~finally:(fun () -> Serve.Client.close conn)
          (fun () ->
            let ask req =
              parse_response
                (Serve.Client.request conn (J.to_string (J.Obj req)))
            in
            let shared = ask (compile_req sample_qasm) in
            let own = ask (compile_req (own_source i)) in
            results.(i) <- Some (shared, own))
      in
      let t0 = Thread.create (client 0) () in
      let t1 = Thread.create (client 1) () in
      Thread.join t0;
      Thread.join t1;
      let expected = J.to_string (one_shot_report_json sample_qasm) in
      Array.iteri
        (fun i result ->
          match result with
          | None -> Alcotest.failf "client %d produced no result" i
          | Some (shared, own) ->
            check_int "shared ok" 0 (int_field "code" shared);
            check_string
              (Printf.sprintf "client %d shared report is byte-identical" i)
              expected
              (J.to_string (field "report" shared));
            check_int "own ok" 0 (int_field "code" own))
        results;
      (* Exactly one of the two racing shared compiles was a miss. *)
      let cached_flags =
        Array.to_list results
        |> List.map (function
             | Some (shared, _) -> bool_field "cached" shared
             | None -> false)
      in
      check_int "one hit, one miss on the shared request" 1
        (List.length (List.filter Fun.id cached_flags)))

(* --- robustness: supervision, budgets, persistence ------------------ *)

let diagnostic_message r =
  match field "diagnostics" r with
  | J.List (d :: _) -> (
    match J.member "message" d with Some (J.String m) -> m | _ -> "?")
  | _ -> "?"

let test_frame_cap () =
  let t = Serve.create ~max_frame_bytes:1024 () in
  let oversized =
    J.to_string (J.Obj (compile_req (sample_qasm ^ String.make 2000 ' ')))
  in
  let r = parse_response (Serve.handle_line t oversized) in
  check_int "frame-cap code" 124 (int_field "code" r);
  check_string "frame-cap kind" "protocol" (diagnostic_kind r);
  (* Small frames still work on the same daemon... *)
  let ok = rpc t (compile_req sample_qasm) in
  check_int "small frame still compiles" 0 (int_field "code" ok);
  (* ...and the rejection was counted. *)
  check_int "frame_rejects counted" 1 (Serve.stats t).Serve.frame_rejects

let test_allocation_budget () =
  (* The inject hook plays a compile that allocates far past the
     budget; [Gc.major] inside it makes the alarm's trip point
     deterministic instead of waiting for natural major-cycle
     pacing. *)
  let hungry () =
    let keep = ref [] in
    for _ = 1 to 64 do
      keep := Bytes.create (1024 * 1024) :: !keep
    done;
    Gc.major ();
    ignore (List.length !keep)
  in
  let t =
    Serve.create ~max_request_bytes:(8 * 1024 * 1024) ~inject:hungry ()
  in
  let r = rpc t (compile_req sample_qasm) in
  check_int "allocation-budget code" 125 (int_field "code" r);
  check_bool "message names the budget" true
    (let m = diagnostic_message r in
     String.length m >= 17
     &&
     let rec find i =
       i + 17 <= String.length m
       && (String.sub m i 17 = "allocation budget" || find (i + 1))
     in
     find 0);
  check_int "alloc_trips counted" 1 (Serve.stats t).Serve.alloc_trips;
  (* The daemon survived: the same request without the hungry inject
     compiles normally. *)
  let calm = Serve.create ~max_request_bytes:(256 * 1024 * 1024) () in
  check_int "modest request passes the budget" 0
    (int_field "code" (rpc calm (compile_req sample_qasm)))

let test_watchdog_abandons_wedged_requests () =
  let t =
    Serve.create ~max_deadline_seconds:0.1 ~watchdog_grace_seconds:0.1
      ~inject:(fun () -> Thread.delay 0.6)
      ()
  in
  let line =
    J.to_string (J.Obj (compile_req sample_qasm @ [ ("id", J.Int 9) ]))
  in
  let r = parse_response (Serve.handle_line_supervised t line) in
  check_int "watchdog code" 125 (int_field "code" r);
  check_int "id echoed on the supervisor's answer" 9 (int_field "id" r);
  check_bool "message names the watchdog" true
    (String.length (diagnostic_message r) >= 8
    && String.sub (diagnostic_message r) 0 8 = "watchdog");
  check_int "watchdog_trips counted" 1 (Serve.stats t).Serve.watchdog_trips;
  (* The daemon stays responsive while the abandoned worker drains. *)
  let ping = rpc t [ ("op", J.String "ping") ] in
  check_int "still answers" 0 (int_field "code" ping);
  (* Let the abandoned thread finish before the process exits. *)
  Thread.delay 0.7

let test_byte_budget_lru () =
  (* Probe one entry's charged size, then budget two entries plus
     slack: the third insert must evict exactly the least recently
     used one. *)
  let probe = Serve.create () in
  ignore (rpc probe (compile_req sample_qasm));
  let entry_bytes = (Serve.stats probe).Serve.resident_bytes in
  check_bool "probe entry has a size" true (entry_bytes > 0);
  let budget = (2 * entry_bytes) + 256 in
  let t = Serve.create ~max_cache_bytes:budget () in
  let source_b = sample_qasm ^ "x q[0];\n" in
  let source_c = sample_qasm ^ "z q[0];\n" in
  let compile s = bool_field "cached" (rpc t (compile_req s)) in
  check_bool "A misses" false (compile sample_qasm);
  check_bool "B misses" false (compile source_b);
  check_bool "A hits" true (compile sample_qasm);
  check_bool "C misses" false (compile source_c);
  let c = Serve.stats t in
  check_bool "byte budget evicted" true (c.Serve.evictions >= 1);
  check_bool "resident bytes within budget" true
    (c.Serve.resident_bytes <= budget);
  check_bool "B (the LRU entry) was the victim" false (compile source_b)

let temp_dir () =
  let path = Filename.temp_file "qsynth-serve-persist" "" in
  Sys.remove path;
  path

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

let test_persistent_cache_warm_restart () =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let first = Serve.create ~persist_dir:dir () in
      let miss = rpc first (compile_req sample_qasm) in
      check_bool "first daemon misses" false (bool_field "cached" miss);
      let spilled =
        Array.to_list (Sys.readdir dir)
        |> List.filter (fun n -> Filename.check_suffix n ".rpt")
      in
      check_int "one report spilled" 1 (List.length spilled);
      (* Plant a torn temp and a garbage report: a restart must sweep
         both and serve neither. *)
      let plant name text =
        let oc = open_out (Filename.concat dir name) in
        output_string oc text;
        close_out oc
      in
      plant ".tmp-999-stale.rpt" "{\"schema\":\"qsynth-serve-cache/v1\"";
      plant "deadbeef.rpt" "not json at all";
      let second = Serve.create ~persist_dir:dir () in
      let c = Serve.stats second in
      check_int "one entry warmed from disk" 1 c.Serve.warmed;
      check_bool "garbage was counted" true (c.Serve.persist_errors >= 1);
      check_bool "garbage report deleted" false
        (Sys.file_exists (Filename.concat dir "deadbeef.rpt"));
      check_bool "stale temp swept" false
        (Sys.file_exists (Filename.concat dir ".tmp-999-stale.rpt"));
      let hit = rpc second (compile_req sample_qasm) in
      check_bool "restarted daemon serves from the warmed cache" true
        (bool_field "cached" hit);
      check_string "warm report is byte-identical to the original miss"
        (J.to_string (field "report" miss))
        (J.to_string (field "report" hit)))

(* --- robustness: the socket layer ----------------------------------- *)

let connect_retry address retries =
  let rec go retries =
    match Serve.Client.connect address with
    | conn -> conn
    | exception _ when retries > 0 ->
      Thread.delay 0.02;
      go (retries - 1)
    | exception e -> raise e
  in
  go retries

(* Read one response line from a raw fd (for clients that never send
   anything, e.g. shed connections answered straight from the accept
   loop). *)
let read_line_fd fd =
  let buf = Buffer.create 256 in
  let b = Bytes.create 1 in
  let rec go () =
    match Unix.read fd b 0 1 with
    | 0 -> Buffer.contents buf
    | _ ->
      if Bytes.get b 0 = '\n' then Buffer.contents buf
      else begin
        Buffer.add_char buf (Bytes.get b 0);
        go ()
      end
  in
  go ()

let with_server daemon f =
  let path = temp_socket_path () in
  let address = Serve.Unix_socket path in
  let server = Thread.create (fun () -> Serve.serve daemon address) () in
  Fun.protect
    ~finally:(fun () ->
      (try
         let conn = connect_retry address 5 in
         ignore (Serve.Client.request conn {|{"op":"shutdown"}|});
         Serve.Client.close conn
       with _ -> ());
      Thread.join server;
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      (* Wait for the listener. *)
      Serve.Client.close (connect_retry address 100);
      f path address)

let test_worker_pool_stays_bounded () =
  (* The regression for the old grow-only [Thread.create] list: many
     short-lived connections through a 2-thread pool must leave no
     resident connection state behind — the open-connections gauge
     returns to (exactly the stats connection itself), and the pool
     served every one of them. *)
  let daemon = Serve.create ~max_workers:2 () in
  with_server daemon (fun _path address ->
      (* The with_server readiness probe is itself a connection; wait
         for it to be fully absorbed, then count deltas. *)
      let rec absorb retries =
        let c = Serve.stats daemon in
        if
          (c.Serve.open_connections = 0 && c.Serve.connections_served >= 1)
          || retries = 0
        then ()
        else begin
          Thread.delay 0.02;
          absorb (retries - 1)
        end
      in
      absorb 200;
      let base = (Serve.stats daemon).Serve.connections_served in
      for _ = 1 to 30 do
        let conn = connect_retry address 100 in
        let r = parse_response (Serve.Client.request conn {|{"op":"ping"}|}) in
        check_int "ping ok" 0 (int_field "code" r);
        Serve.Client.close conn
      done;
      (* EOF processing is asynchronous; poll the gauge down. *)
      let rec settle retries =
        let c = Serve.stats daemon in
        if
          (c.Serve.open_connections = 0
          && c.Serve.connections_served - base >= 30)
          || retries = 0
        then c
        else begin
          Thread.delay 0.02;
          settle (retries - 1)
        end
      in
      let c = settle 100 in
      check_int "every connection closed" 0 c.Serve.open_connections;
      check_int "every connection served" 30
        (c.Serve.connections_served - base))

let test_client_disconnect_is_clean () =
  (* The client hangs up between request and response: the daemon must
     absorb the EPIPE on the write and keep serving. *)
  let daemon = Serve.create ~inject:(fun () -> Thread.delay 0.2) () in
  with_server daemon (fun path address ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      let line = J.to_string (J.Obj (compile_req sample_qasm)) ^ "\n" in
      ignore (Unix.write_substring fd line 0 (String.length line));
      Unix.close fd;
      (* The compile is still in flight for ~0.2s; the daemon discovers
         the disconnect when it writes the response. *)
      let conn = connect_retry address 100 in
      let r = parse_response (Serve.Client.request conn {|{"op":"ping"}|}) in
      check_int "daemon survived the disconnect" 0 (int_field "code" r);
      Serve.Client.close conn;
      let rec settle retries =
        let c = Serve.stats daemon in
        if c.Serve.client_disconnects >= 1 || retries = 0 then c
        else begin
          Thread.delay 0.02;
          settle (retries - 1)
        end
      in
      check_bool "disconnect was counted" true
        ((settle 100).Serve.client_disconnects >= 1))

let test_overload_sheds () =
  (* One worker, one queue slot: a burst's third connection must be
     answered with a structured overload response, not queued without
     bound. *)
  let daemon =
    Serve.create ~max_workers:1 ~max_pending:1
      ~inject:(fun () -> Thread.delay 1.0)
      ()
  in
  with_server daemon (fun path address ->
      (* Wait until the single worker is idle again after the
         readiness probe, so the probe's connection cannot still be
         occupying the queue slot. *)
      let wait_for pred =
        let rec go retries =
          if pred (Serve.stats daemon) then ()
          else if retries = 0 then Alcotest.fail "daemon never settled"
          else begin
            Thread.delay 0.02;
            go (retries - 1)
          end
        in
        go 200
      in
      wait_for (fun c ->
          c.Serve.open_connections = 0 && c.Serve.connections_served >= 1);
      let base = (Serve.stats daemon).Serve.connections_served in
      let busy = connect_retry address 100 in
      let slow_result = ref None in
      let slow =
        Thread.create
          (fun () ->
            slow_result :=
              Some
                (Serve.Client.request busy
                   (J.to_string (J.Obj (compile_req sample_qasm)))))
          ()
      in
      (* The worker has picked the slow compile up once the served
         count moves; it now sleeps ~1s inside the inject hook. *)
      wait_for (fun c -> c.Serve.connections_served > base);
      Thread.delay 0.05;
      (* Occupies the only queue slot while the worker compiles. *)
      let queued = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect queued (Unix.ADDR_UNIX path);
      Thread.delay 0.15;
      (* Third connection: queue full, shed at the accept loop. *)
      let extra = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect extra (Unix.ADDR_UNIX path);
      let shed_line = read_line_fd extra in
      Unix.close extra;
      Unix.close queued;
      let r = parse_response shed_line in
      check_int "overloaded is a reported failure" 123 (int_field "code" r);
      check_string "status" "overloaded"
        (match field "status" r with J.String s -> s | _ -> "?");
      check_bool "retry_after_ms present" true
        (int_field "retry_after_ms" r > 0);
      Thread.join slow;
      (match !slow_result with
      | Some line ->
        check_int "the in-flight compile still completed" 0
          (int_field "code" (parse_response line))
      | None -> Alcotest.fail "slow client lost its response");
      Serve.Client.close busy;
      check_bool "shed counted" true ((Serve.stats daemon).Serve.shed >= 1))

let test_graceful_drain () =
  (* Shutdown during a slow in-flight compile: that request completes
     with a full response, the daemon then refuses new work and the
     serve call returns. *)
  let daemon = Serve.create ~inject:(fun () -> Thread.delay 0.3) () in
  let path = temp_socket_path () in
  let address = Serve.Unix_socket path in
  let server = Thread.create (fun () -> Serve.serve daemon address) () in
  Serve.Client.close (connect_retry address 100);
  let slow = connect_retry address 100 in
  let slow_result = ref None in
  let slow_thread =
    Thread.create
      (fun () ->
        slow_result :=
          Some
            (Serve.Client.request slow
               (J.to_string (J.Obj (compile_req sample_qasm)))))
      ()
  in
  Thread.delay 0.1;
  let ctl = connect_retry address 100 in
  let stop = parse_response (Serve.Client.request ctl {|{"op":"shutdown"}|}) in
  check_bool "shutdown acknowledged" true (bool_field "stopping" stop);
  Serve.Client.close ctl;
  Thread.join slow_thread;
  (match !slow_result with
  | Some line ->
    let r = parse_response line in
    check_int "in-flight compile completed through the drain" 0
      (int_field "code" r);
    check_bool "with a full report" true (J.member "report" r <> None)
  | None -> Alcotest.fail "slow client lost its response");
  Serve.Client.close slow;
  (* The serve call returns on its own... *)
  Thread.join server;
  (* ...and the socket is gone: new connections are refused. *)
  check_bool "new connections refused after drain" true
    (match Serve.Client.connect address with
    | conn ->
      Serve.Client.close conn;
      false
    | exception _ -> true);
  try Sys.remove path with Sys_error _ -> ()

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "ping and envelope" `Quick test_ping_and_envelope;
          Alcotest.test_case "compile matches one-shot" `Quick
            test_compile_matches_one_shot;
          Alcotest.test_case "malformed frames are misuse" `Quick
            test_malformed_frames_are_misuse;
          Alcotest.test_case "missing fields are reported failures" `Quick
            test_missing_fields_are_reported_failures;
          Alcotest.test_case "parse errors are reported failures" `Quick
            test_parse_errors_are_reported_failures;
          Alcotest.test_case "batch aggregates" `Quick test_batch_aggregates;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit and key sensitivity" `Quick
            test_cache_hit_and_key_sensitivity;
          Alcotest.test_case "LRU eviction" `Quick test_lru_eviction;
          Alcotest.test_case "zero capacity disables" `Quick
            test_zero_capacity_disables_caching;
          Alcotest.test_case "lookups count resolved consultations" `Quick
            test_lookups_count_resolved_consultations;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "stats snapshot is never torn" `Quick
            test_stats_snapshot_is_never_torn;
          Alcotest.test_case "parallel batch matches sequential" `Quick
            test_parallel_batch_matches_sequential;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "frame cap rejects oversized lines" `Quick
            test_frame_cap;
          Alcotest.test_case "allocation budget trips to 125" `Quick
            test_allocation_budget;
          Alcotest.test_case "watchdog abandons wedged requests" `Quick
            test_watchdog_abandons_wedged_requests;
          Alcotest.test_case "byte-budgeted LRU" `Quick test_byte_budget_lru;
          Alcotest.test_case "persistent cache warm restart" `Quick
            test_persistent_cache_warm_restart;
        ] );
      ( "sockets",
        [
          Alcotest.test_case "concurrent clients over loopback" `Quick
            test_concurrent_clients_loopback;
          Alcotest.test_case "worker pool stays bounded" `Quick
            test_worker_pool_stays_bounded;
          Alcotest.test_case "client disconnect is clean" `Quick
            test_client_disconnect_is_clean;
          Alcotest.test_case "overload sheds with retry_after_ms" `Quick
            test_overload_sheds;
          Alcotest.test_case "graceful drain completes in-flight work" `Quick
            test_graceful_drain;
        ] );
    ]
