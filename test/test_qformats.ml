let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let sample_circuit =
  Circuit.make ~n:3
    [
      Gate.H 0;
      Gate.T 1;
      Gate.Tdg 1;
      Gate.S 2;
      Gate.Sdg 2;
      Gate.X 0;
      Gate.Y 1;
      Gate.Z 2;
      Gate.Cnot { control = 0; target = 1 };
      Gate.Cz (1, 2);
      Gate.Swap (0, 2);
      Gate.Toffoli { c1 = 0; c2 = 1; target = 2 };
    ]

(* --- QASM --- *)

let test_qasm_roundtrip () =
  let printed = Qformats.Qasm.to_string sample_circuit in
  let parsed = Qformats.Qasm.of_string printed in
  check_bool "round trip" true (Circuit.equal sample_circuit parsed)

let contains_sub s sub =
  let n = String.length s and k = String.length sub in
  let rec scan i = i + k <= n && (String.sub s i k = sub || scan (i + 1)) in
  scan 0

let test_qasm_header_and_measure () =
  let printed = Qformats.Qasm.to_string ~creg:true (Circuit.empty 2) in
  check_bool "has creg" true (contains_sub printed "creg c[2];");
  check_bool "has measure" true (contains_sub printed "measure q[1] -> c[1];");
  check_bool "has header" true (contains_sub printed "OPENQASM 2.0;")

let test_qasm_parse_handwritten () =
  let src =
    "OPENQASM 2.0;\n\
     include \"qelib1.inc\";\n\
     // a comment\n\
     qreg q[2];\n\
     creg c[2];\n\
     h q[0];\n\
     cx q[0],q[1];\n\
     barrier q[0];\n\
     measure q[0] -> c[0];\n"
  in
  let c = Qformats.Qasm.of_string src in
  check_int "width" 2 (Circuit.n_qubits c);
  check_bool "gates" true
    (Circuit.gates c = [ Gate.H 0; Gate.Cnot { control = 0; target = 1 } ])

let test_qasm_angle_expressions () =
  let pi = 4.0 *. atan 1.0 in
  let src =
    "qreg q[2];\n\
     rz(pi/2) q[0];\n\
     u1(3*pi/4) q[1];\n\
     rx(-pi) q[0];\n\
     ry(2*(pi - pi/2)) q[1];\n\
     rz(0.5e1) q[0];\n"
  in
  let c = Qformats.Qasm.of_string src in
  let close a b = abs_float (a -. b) < 1e-12 in
  (match Circuit.gates c with
  | [ Gate.Rz (a, 0); Gate.Phase (b, 1); Gate.Rx (c', 0); Gate.Ry (d, 1);
      Gate.Rz (e, 0) ] ->
    check_bool "pi/2" true (close a (pi /. 2.0));
    check_bool "3*pi/4" true (close b (3.0 *. pi /. 4.0));
    check_bool "-pi" true (close c' (-.pi));
    check_bool "parens" true (close d pi);
    check_bool "scientific" true (close e 5.0)
  | _ -> Alcotest.fail "unexpected gate sequence");
  (* Malformed expressions rejected. *)
  List.iter
    (fun bad ->
      match Qformats.Qasm.of_string ("qreg q[1];\n" ^ bad ^ "\n") with
      | exception Qformats.Qasm.Parse_error _ -> ()
      | _ -> Alcotest.fail ("accepted " ^ bad))
    [ "rz(pi/0) q[0];"; "rz(pj) q[0];"; "rz(1+) q[0];"; "rz() q[0];" ]

let test_qasm_u_gates () =
  (* u3(theta, phi, lambda) must implement the IBM u3 up to global
     phase; check u3(pi/2, 0, pi) = H. *)
  let c = Qformats.Qasm.of_string "qreg q[1];\nu3(pi/2, 0, pi) q[0];\n" in
  check_bool "u3 = H up to phase" true
    (Mathkit.Matrix.equal_up_to_global_phase (Sim.unitary c)
       (Gate.base_matrix (Gate.H 0)));
  (* u2(0, pi) = H too. *)
  let c2 = Qformats.Qasm.of_string "qreg q[1];\nu2(0, pi) q[0];\n" in
  check_bool "u2(0,pi) = H up to phase" true
    (Mathkit.Matrix.equal_up_to_global_phase (Sim.unitary c2)
       (Gate.base_matrix (Gate.H 0)));
  (* u1(x) = Phase(x). *)
  let c3 = Qformats.Qasm.of_string "qreg q[1];\np(pi/4) q[0];\n" in
  check_bool "p = T" true
    (Mathkit.Matrix.approx_equal ~eps:1e-12 (Sim.unitary c3)
       (Gate.base_matrix (Gate.T 0)))

let test_qasm_multi_register () =
  let src =
    "qreg a[2];\nqreg b[3];\nh a[0];\ncx a[1],b[0];\nx b[2];\n"
  in
  let c = Qformats.Qasm.of_string src in
  check_int "total width" 5 (Circuit.n_qubits c);
  check_bool "layout in declaration order" true
    (Circuit.gates c
    = [ Gate.H 0; Gate.Cnot { control = 1; target = 2 }; Gate.X 4 ]);
  (* Out-of-range index within a register is rejected. *)
  (match Qformats.Qasm.of_string "qreg a[2];\nh a[2];\n" with
  | exception Qformats.Qasm.Parse_error _ -> ()
  | _ -> Alcotest.fail "accepted out-of-range register index");
  match Qformats.Qasm.of_string "qreg a[2];\nqreg a[2];\n" with
  | exception Qformats.Qasm.Parse_error _ -> ()
  | _ -> Alcotest.fail "accepted duplicate register"

let test_qasm_errors () =
  let expect_error s =
    match Qformats.Qasm.of_string s with
    | exception Qformats.Qasm.Parse_error _ -> ()
    | _ -> Alcotest.fail ("accepted bad QASM: " ^ s)
  in
  expect_error "qreg q[2];\nfrobnicate q[0];";
  expect_error "h q[0];";
  (* no qreg *)
  expect_error "qreg q[2];\ncx q[0];";
  match Qformats.Qasm.to_string (Circuit.make ~n:4 [ Gate.mct [ 0; 1; 2 ] 3 ]) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "printed an MCT in QASM 2.0"

(* --- .qc --- *)

let test_qc_roundtrip () =
  let printed = Qformats.Qc.to_string sample_circuit in
  let parsed = Qformats.Qc.of_string printed in
  check_bool "round trip" true (Circuit.equal sample_circuit parsed.Qformats.Qc.circuit)

let test_qc_parse_dialect () =
  let src =
    ".v a b c d\n\
     .i a b c\n\
     .o d\n\
     # comment line\n\
     BEGIN\n\
     H a\n\
     T* b\n\
     not c\n\
     tof a b\n\
     tof a b c\n\
     t4 a b c d\n\
     END\n"
  in
  let parsed = Qformats.Qc.of_string src in
  let expected =
    [
      Gate.H 0;
      Gate.Tdg 1;
      Gate.X 2;
      Gate.Cnot { control = 0; target = 1 };
      Gate.Toffoli { c1 = 0; c2 = 1; target = 2 };
      Gate.Mct { controls = [ 0; 1; 2 ]; target = 3 };
    ]
  in
  check_bool "gates" true (Circuit.gates parsed.Qformats.Qc.circuit = expected);
  check_bool "inputs" true (parsed.Qformats.Qc.inputs = [ 0; 1; 2 ]);
  check_bool "outputs" true (parsed.Qformats.Qc.outputs = [ 3 ])

let test_qc_errors () =
  let expect_error s =
    match Qformats.Qc.of_string s with
    | exception Qformats.Qc.Parse_error _ -> ()
    | _ -> Alcotest.fail ("accepted bad .qc: " ^ s)
  in
  expect_error ".v a b\nBEGIN\nH z\nEND\n";
  (* undeclared wire *)
  expect_error ".v a b\nH a\n";
  (* gate outside body *)
  expect_error ".v a a\nBEGIN\nEND\n";
  (* duplicate wire *)
  expect_error "BEGIN\nEND\n"

(* --- .real --- *)

let test_real_roundtrip () =
  let reversible =
    Circuit.make ~n:4
      [
        Gate.X 0;
        Gate.Cnot { control = 0; target = 1 };
        Gate.Toffoli { c1 = 0; c2 = 1; target = 2 };
        Gate.Mct { controls = [ 0; 1; 2 ]; target = 3 };
        Gate.Swap (1, 3);
      ]
  in
  let printed = Qformats.Real.to_string reversible in
  let parsed = Qformats.Real.of_string printed in
  check_bool "round trip" true
    (Circuit.equal reversible parsed.Qformats.Real.circuit)

let test_real_fredkin_expansion () =
  let src =
    ".version 1.0\n\
     .numvars 3\n\
     .variables a b c\n\
     .begin\n\
     f3 a b c\n\
     .end\n"
  in
  let parsed = Qformats.Real.of_string src in
  let c = parsed.Qformats.Real.circuit in
  (* Expanded Fredkin must behave as a controlled SWAP on every basis
     state. *)
  let cswap = Circuit.make ~n:3 [ Gate.X 0; Gate.Swap (1, 2); Gate.X 0 ] in
  ignore cswap;
  let ok = ref true in
  for idx = 0 to 7 do
    let bits = Array.init 3 (fun q -> (idx lsr (2 - q)) land 1 = 1) in
    match Sim.classical_run c (Array.copy bits) with
    | None -> ok := false
    | Some out ->
      let expected =
        if bits.(0) then [| bits.(0); bits.(2); bits.(1) |] else bits
      in
      if out <> expected then ok := false
  done;
  check_bool "fredkin semantics" true !ok

let test_real_rejects_quantum_gates () =
  match Qformats.Real.to_string (Circuit.make ~n:1 [ Gate.H 0 ]) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "printed H in .real"

let test_real_numvars_mismatch () =
  let src = ".numvars 2\n.variables a b c\n.begin\n.end\n" in
  match Qformats.Real.of_string src with
  | exception Qformats.Real.Parse_error _ -> ()
  | _ -> Alcotest.fail "accepted .numvars mismatch"

(* --- PLA --- *)

let test_pla_parse_and_eval () =
  let src = ".i 3\n.o 1\n101 1\n1-0 1\n.e\n" in
  let pla = Qformats.Pla.of_string src in
  check_int "inputs" 3 pla.Qformats.Pla.n_inputs;
  check_int "cubes" 2 (List.length pla.Qformats.Pla.cubes);
  (* SOP semantics: f = a.~b.c + a.~c *)
  check_bool "101 -> 1" true
    (Qformats.Pla.eval pla ~output:0 [| true; false; true |]);
  check_bool "110 -> 1" true
    (Qformats.Pla.eval pla ~output:0 [| true; true; false |]);
  check_bool "111 -> 0" false
    (Qformats.Pla.eval pla ~output:0 [| true; true; true |]);
  check_bool "000 -> 0" false
    (Qformats.Pla.eval pla ~output:0 [| false; false; false |])

let test_pla_esop_semantics () =
  (* Overlapping cubes cancel under ESOP. *)
  let src = ".i 2\n.o 1\n.type esop\n1- 1\n11 1\n.e\n" in
  let pla = Qformats.Pla.of_string src in
  check_bool "10 -> 1" true (Qformats.Pla.eval pla ~output:0 [| true; false |]);
  check_bool "11 -> 0 (xor cancels)" false
    (Qformats.Pla.eval pla ~output:0 [| true; true |])

let test_pla_truth_table () =
  let src = ".i 2\n.o 2\n11 10\n0- 01\n.e\n" in
  let pla = Qformats.Pla.of_string src in
  check_bool "output 0 table" true
    (Qformats.Pla.truth_table pla ~output:0 = [| false; false; false; true |]);
  check_bool "output 1 table" true
    (Qformats.Pla.truth_table pla ~output:1 = [| true; true; false; false |])

let test_pla_roundtrip () =
  let src = ".i 3\n.o 1\n.type esop\n1-1 1\n010 1\n.e\n" in
  let pla = Qformats.Pla.of_string src in
  let pla2 = Qformats.Pla.of_string (Qformats.Pla.to_string pla) in
  check_bool "tables agree" true
    (Qformats.Pla.truth_table pla ~output:0
    = Qformats.Pla.truth_table pla2 ~output:0)

let test_pla_errors () =
  let expect_error s =
    match Qformats.Pla.of_string s with
    | exception Qformats.Pla.Parse_error _ -> ()
    | _ -> Alcotest.fail ("accepted bad PLA: " ^ s)
  in
  expect_error "11 1\n";
  expect_error ".i 2\n.o 1\n111 1\n.e\n";
  expect_error ".i 2\n.o 1\n1x 1\n.e\n"

(* --- file round trips --- *)

let with_temp_dir f =
  let dir = Filename.temp_file "qformats" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let test_file_roundtrips () =
  with_temp_dir (fun dir ->
      let qasm_path = Filename.concat dir "c.qasm" in
      Qformats.Qasm.write_file qasm_path sample_circuit;
      check_bool "qasm file" true
        (Circuit.equal sample_circuit (Qformats.Qasm.read_file qasm_path));
      let qc_path = Filename.concat dir "c.qc" in
      Qformats.Qc.write_file qc_path sample_circuit;
      check_bool "qc file" true
        (Circuit.equal sample_circuit
           (Qformats.Qc.read_file qc_path).Qformats.Qc.circuit);
      let reversible =
        Circuit.make ~n:3
          [ Gate.X 0; Gate.Toffoli { c1 = 0; c2 = 1; target = 2 } ]
      in
      let real_path = Filename.concat dir "c.real" in
      Qformats.Real.write_file real_path reversible;
      check_bool "real file" true
        (Circuit.equal reversible
           (Qformats.Real.read_file real_path).Qformats.Real.circuit);
      let pla = Qformats.Pla.of_string ".i 2\n.o 1\n11 1\n.e\n" in
      let pla_path = Filename.concat dir "f.pla" in
      Qformats.Pla.write_file pla_path pla;
      check_bool "pla file" true
        (Qformats.Pla.truth_table (Qformats.Pla.read_file pla_path) ~output:0
        = Qformats.Pla.truth_table pla ~output:0))

let test_whitespace_robustness () =
  (* Tabs and stray blank lines parse everywhere. *)
  let qc = ".v\ta b\n\nBEGIN\n\tH\ta\n   t2  a   b\nEND\n" in
  let parsed = Qformats.Qc.of_string qc in
  check_bool "qc tabs" true
    (Circuit.gates parsed.Qformats.Qc.circuit
    = [ Gate.H 0; Gate.Cnot { control = 0; target = 1 } ]);
  let real = ".numvars 2\n.variables\ta b\n.begin\n\tt2\ta\tb\n.end\n" in
  check_bool "real tabs" true
    ((Qformats.Real.of_string real).Qformats.Real.circuit
    |> Circuit.gates
    = [ Gate.Cnot { control = 0; target = 1 } ])

(* --- benchmark fixpoints --- *)

(* Every benchmark circuit, lowered to the native library (OpenQASM 2.0
   has no generalized Toffoli), must emit -> parse -> emit to the exact
   same text: the emitted dialect is a fixed point of the parser. *)
let native_benchmarks () =
  let lower ~n c = Decompose.to_native (Circuit.widen c n) in
  List.map
    (fun b ->
      ( "#" ^ b.Benchsuite.Single_target.name,
        lower ~n:16 (Benchsuite.Single_target.circuit b) ))
    Benchsuite.Single_target.all
  @ List.map
      (fun b ->
        ( b.Benchsuite.Revlib_cascades.name,
          lower ~n:16 (Benchsuite.Revlib_cascades.circuit b) ))
      Benchsuite.Revlib_cascades.all
  @ List.map
      (fun b ->
        ( b.Benchsuite.Big_cascades.name,
          lower ~n:96 (Benchsuite.Big_cascades.circuit b) ))
      Benchsuite.Big_cascades.all

let test_qasm_benchmark_fixpoint () =
  List.iter
    (fun (name, c) ->
      let once = Qformats.Qasm.to_string c in
      let parsed = Qformats.Qasm.of_string once in
      check_bool (name ^ " circuit preserved") true (Circuit.equal c parsed);
      check_bool (name ^ " emission fixpoint") true
        (String.equal once (Qformats.Qasm.to_string parsed)))
    (native_benchmarks ())

(* --- properties --- *)

let prop_qasm_angle_fixpoint =
  (* Rotation angles are printed with %.17g, which is lossless for any
     finite double: the parsed angle is bit-identical, and a second
     emission reproduces the first byte for byte. *)
  QCheck2.Test.make ~name:"rotation angles survive emission exactly" ~count:200
    QCheck2.Gen.(
      pair (int_range 0 2)
        (oneof
           [
             float_range (-10.) 10.;
             float_range (-1e-9) 1e-9;
             oneofl
               [
                 Float.pi; -.Float.pi; Float.pi /. 3.0; 1.0 /. 3.0;
                 0.1; 1e17; -1.2345678901234567;
               ];
           ]))
    (fun (axis, theta) ->
      let gate =
        match axis with
        | 0 -> Gate.Rx (theta, 0)
        | 1 -> Gate.Ry (theta, 0)
        | _ -> Gate.Rz (theta, 0)
      in
      let c = Circuit.make ~n:1 [ gate ] in
      let once = Qformats.Qasm.to_string c in
      let parsed = Qformats.Qasm.of_string once in
      Circuit.equal c parsed
      && String.equal once (Qformats.Qasm.to_string parsed))

let prop_qasm_roundtrip =
  QCheck2.Test.make ~name:"QASM print-parse round trip" ~count:60
    (Testutil.gen_circuit ~max_gates:20 5)
    (fun c ->
      let printed = Qformats.Qasm.to_string c in
      Circuit.equal c (Qformats.Qasm.of_string printed))

let prop_qc_roundtrip =
  QCheck2.Test.make ~name:".qc print-parse round trip" ~count:60
    (Testutil.gen_circuit ~max_gates:20 5)
    (fun c ->
      let printed = Qformats.Qc.to_string c in
      Circuit.equal c (Qformats.Qc.of_string printed).Qformats.Qc.circuit)

let prop_real_roundtrip =
  QCheck2.Test.make ~name:".real print-parse round trip" ~count:60
    (Testutil.gen_classical_circuit ~max_gates:20 5)
    (fun c ->
      let printed = Qformats.Real.to_string c in
      (* The parser canonicalizes control order, so compare modulo it. *)
      Testutil.equal_canonical c
        (Qformats.Real.of_string printed).Qformats.Real.circuit)

(* --- end-of-input error locations --- *)

(* Failures only detectable once the whole input has been read (a
   missing mandatory declaration) must point at the last line of the
   input, never a fictitious "line 0". *)

let expect_last_line name parse src =
  let n_lines = List.length (String.split_on_char '\n' src) in
  match parse src with
  | Ok line ->
    check_bool
      (Printf.sprintf "%s: line %d of %d" name line n_lines)
      true
      (line = n_lines && line >= 1)
  | Error () -> Alcotest.failf "%s: parsed successfully" name

let test_end_of_input_lines () =
  expect_last_line "qasm no qreg"
    (fun src ->
      match Qformats.Qasm.of_string src with
      | _ -> Error ()
      | exception Qformats.Qasm.Parse_error { line; _ } -> Ok line)
    "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n// no register\n";
  expect_last_line "qc no .v"
    (fun src ->
      match Qformats.Qc.of_string src with
      | _ -> Error ()
      | exception Qformats.Qc.Parse_error { line; _ } -> Ok line)
    "# wires forgotten\nBEGIN\nEND\n";
  expect_last_line "real no .variables"
    (fun src ->
      match Qformats.Real.of_string src with
      | _ -> Error ()
      | exception Qformats.Real.Parse_error { line; _ } -> Ok line)
    ".version 2.0\n.begin\n.end\n";
  expect_last_line "real numvars mismatch"
    (fun src ->
      match Qformats.Real.of_string src with
      | _ -> Error ()
      | exception Qformats.Real.Parse_error { line; _ } -> Ok line)
    ".version 2.0\n.numvars 3\n.variables a b\n.begin\n.end\n";
  expect_last_line "pla missing .i/.o"
    (fun src ->
      match Qformats.Pla.of_string src with
      | _ -> Error ()
      | exception Qformats.Pla.Parse_error { line; _ } -> Ok line)
    "# only a type\n.type esop\n.e\n"

let test_empty_input_errors_line_one () =
  (* The degenerate empty input still reports a positive line. *)
  List.iter
    (fun (name, parse) ->
      match parse "" with
      | Some line ->
        check_bool (name ^ ": line 1 on empty input") true (line = 1)
      | None -> Alcotest.failf "%s: empty input parsed" name)
    [
      ( "qasm",
        fun src ->
          match Qformats.Qasm.of_string src with
          | _ -> None
          | exception Qformats.Qasm.Parse_error { line; _ } -> Some line );
      ( "qc",
        fun src ->
          match Qformats.Qc.of_string src with
          | _ -> None
          | exception Qformats.Qc.Parse_error { line; _ } -> Some line );
      ( "real",
        fun src ->
          match Qformats.Real.of_string src with
          | _ -> None
          | exception Qformats.Real.Parse_error { line; _ } -> Some line );
      ( "pla",
        fun src ->
          match Qformats.Pla.of_string src with
          | _ -> None
          | exception Qformats.Pla.Parse_error { line; _ } -> Some line );
    ]

let () =
  Alcotest.run "qformats"
    [
      ( "qasm",
        [
          Alcotest.test_case "round trip" `Quick test_qasm_roundtrip;
          Alcotest.test_case "header/measure" `Quick test_qasm_header_and_measure;
          Alcotest.test_case "handwritten" `Quick test_qasm_parse_handwritten;
          Alcotest.test_case "angle expressions" `Quick
            test_qasm_angle_expressions;
          Alcotest.test_case "u gates" `Quick test_qasm_u_gates;
          Alcotest.test_case "multi register" `Quick test_qasm_multi_register;
          Alcotest.test_case "errors" `Quick test_qasm_errors;
          Alcotest.test_case "benchmark fixpoint" `Quick
            test_qasm_benchmark_fixpoint;
          QCheck_alcotest.to_alcotest prop_qasm_roundtrip;
          QCheck_alcotest.to_alcotest prop_qasm_angle_fixpoint;
        ] );
      ( "qc",
        [
          Alcotest.test_case "round trip" `Quick test_qc_roundtrip;
          Alcotest.test_case "dialect" `Quick test_qc_parse_dialect;
          Alcotest.test_case "errors" `Quick test_qc_errors;
          QCheck_alcotest.to_alcotest prop_qc_roundtrip;
        ] );
      ( "real",
        [
          Alcotest.test_case "round trip" `Quick test_real_roundtrip;
          Alcotest.test_case "fredkin" `Quick test_real_fredkin_expansion;
          Alcotest.test_case "rejects quantum" `Quick
            test_real_rejects_quantum_gates;
          Alcotest.test_case "numvars mismatch" `Quick test_real_numvars_mismatch;
          QCheck_alcotest.to_alcotest prop_real_roundtrip;
        ] );
      ( "pla",
        [
          Alcotest.test_case "parse/eval" `Quick test_pla_parse_and_eval;
          Alcotest.test_case "esop semantics" `Quick test_pla_esop_semantics;
          Alcotest.test_case "truth table" `Quick test_pla_truth_table;
          Alcotest.test_case "round trip" `Quick test_pla_roundtrip;
          Alcotest.test_case "errors" `Quick test_pla_errors;
        ] );
      ( "files",
        [
          Alcotest.test_case "round trips" `Quick test_file_roundtrips;
          Alcotest.test_case "whitespace" `Quick test_whitespace_robustness;
        ] );
      ( "error locations",
        [
          Alcotest.test_case "end-of-input errors use last line" `Quick
            test_end_of_input_lines;
          Alcotest.test_case "empty input errors on line 1" `Quick
            test_empty_input_errors_line_one;
        ] );
    ]
